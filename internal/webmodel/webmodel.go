// Package webmodel generates and serves a synthetic Web site used as the
// origin content behind the instrumenting proxy.
//
// The paper's evaluation ran against live origin servers reached through the
// CoDeeN network; this package substitutes a deterministic site whose pages
// have the structure the detector cares about: visible links between pages,
// embedded images, a stylesheet, a JavaScript file, CGI endpoints that
// redirect or fail, a robots.txt, and a favicon. Page popularity follows a
// Zipf distribution, and page/object sizes follow heavy-tailed draws, so the
// synthetic traffic resembles Web traffic at the level of observable request
// streams.
package webmodel

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"botdetect/internal/rng"
)

// SiteConfig controls synthetic site generation.
type SiteConfig struct {
	// Host is the site's host name, used in absolute URLs.
	Host string
	// NumPages is the number of HTML pages (at least 1; the first is "/").
	NumPages int
	// LinksPerPage is the mean number of visible links from each page.
	LinksPerPage int
	// ImagesPerPage is the mean number of embedded images per page.
	ImagesPerPage int
	// CGIEndpoints is the number of distinct CGI scripts on the site.
	CGIEndpoints int
	// PopularitySkew is the Zipf skew of page popularity (default 0.9).
	PopularitySkew float64
	// Seed drives all randomness in generation.
	Seed uint64
}

// withDefaults returns a copy of the config with zero fields replaced by
// sensible defaults.
func (c SiteConfig) withDefaults() SiteConfig {
	if c.Host == "" {
		c.Host = "www.example.com"
	}
	if c.NumPages <= 0 {
		c.NumPages = 100
	}
	if c.LinksPerPage <= 0 {
		c.LinksPerPage = 8
	}
	if c.ImagesPerPage <= 0 {
		c.ImagesPerPage = 4
	}
	if c.CGIEndpoints <= 0 {
		c.CGIEndpoints = 5
	}
	if c.PopularitySkew <= 0 {
		c.PopularitySkew = 0.9
	}
	return c
}

// Page is one HTML page on the synthetic site.
type Page struct {
	// Path is the page's request path, e.g. "/page17.html".
	Path string
	// Links are paths of pages this page links to with visible anchors.
	Links []string
	// Images are paths of embedded images on the page.
	Images []string
	// CSS is the path of the page's stylesheet.
	CSS string
	// Script is the path of the page's JavaScript file.
	Script string
	// CGILinks are dynamic links (forms/search) present on the page.
	CGILinks []string
	// TextBytes is the amount of filler text in the page body.
	TextBytes int
}

// Object is a servable site object.
type Object struct {
	// Status is the HTTP status the origin returns for this object.
	Status int
	// ContentType is the response content type.
	ContentType string
	// Body is the response body.
	Body []byte
	// RedirectTo is set for 3xx responses.
	RedirectTo string
}

// Site is a generated synthetic web site. All methods are safe for
// concurrent use after generation.
type Site struct {
	cfg     SiteConfig
	pages   []*Page
	byPath  map[string]*Page
	objects map[string]Object

	popMu sync.Mutex
	pop   *rng.Zipf
}

// Generate builds a synthetic site from the configuration.
func Generate(cfg SiteConfig) *Site {
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed).Fork("webmodel")
	s := &Site{
		cfg:     cfg,
		byPath:  make(map[string]*Page),
		objects: make(map[string]Object),
	}

	cgis := make([]string, cfg.CGIEndpoints)
	for i := range cgis {
		cgis[i] = fmt.Sprintf("/cgi-bin/app%d.cgi", i)
	}

	for i := 0; i < cfg.NumPages; i++ {
		path := fmt.Sprintf("/page%d.html", i)
		if i == 0 {
			path = "/"
		}
		p := &Page{
			Path:      path,
			CSS:       fmt.Sprintf("/static/site%d.css", i%7),
			Script:    fmt.Sprintf("/static/site%d.js", i%5),
			TextBytes: int(src.Pareto(800, 1.3)),
		}
		nLinks := 1 + src.Poisson(float64(cfg.LinksPerPage-1))
		for j := 0; j < nLinks; j++ {
			target := src.Intn(cfg.NumPages)
			tp := fmt.Sprintf("/page%d.html", target)
			if target == 0 {
				tp = "/"
			}
			p.Links = append(p.Links, tp)
		}
		nImgs := src.Poisson(float64(cfg.ImagesPerPage))
		for j := 0; j < nImgs; j++ {
			p.Images = append(p.Images, fmt.Sprintf("/img/photo%d_%d.jpg", i, j))
		}
		if src.Bool(0.4) && len(cgis) > 0 {
			p.CGILinks = append(p.CGILinks, cgis[src.Intn(len(cgis))]+fmt.Sprintf("?page=%d", i))
		}
		s.pages = append(s.pages, p)
		s.byPath[p.Path] = p
	}

	// Pre-render static objects.
	for _, p := range s.pages {
		s.objects[p.Path] = Object{Status: http.StatusOK, ContentType: "text/html; charset=utf-8", Body: []byte(renderHTML(s.cfg.Host, p))}
		for _, img := range p.Images {
			if _, ok := s.objects[img]; !ok {
				size := int(src.Pareto(2000, 1.2))
				if size > 200000 {
					size = 200000
				}
				s.objects[img] = Object{Status: http.StatusOK, ContentType: "image/jpeg", Body: fillerBytes(size, byte('j'))}
			}
		}
		if _, ok := s.objects[p.CSS]; !ok {
			s.objects[p.CSS] = Object{Status: http.StatusOK, ContentType: "text/css", Body: []byte(renderCSS(p.CSS, int(src.Pareto(500, 1.5))))}
		}
		if _, ok := s.objects[p.Script]; !ok {
			s.objects[p.Script] = Object{Status: http.StatusOK, ContentType: "application/javascript", Body: []byte(renderJS(p.Script, int(src.Pareto(400, 1.5))))}
		}
	}
	s.objects["/favicon.ico"] = Object{Status: http.StatusOK, ContentType: "image/x-icon", Body: fillerBytes(318, 'i')}
	s.objects["/robots.txt"] = Object{Status: http.StatusOK, ContentType: "text/plain",
		Body: []byte("User-agent: *\nDisallow: /cgi-bin/\nCrawl-delay: 10\n")}

	s.pop = rng.NewZipf(src.Split(), len(s.pages), cfg.PopularitySkew)
	return s
}

// Host returns the configured host name.
func (s *Site) Host() string { return s.cfg.Host }

// NumPages returns the number of HTML pages on the site.
func (s *Site) NumPages() int { return len(s.pages) }

// Pages returns all pages in index order. The returned slice must not be
// modified.
func (s *Site) Pages() []*Page { return s.pages }

// Page returns the page with the given path, or nil.
func (s *Site) Page(path string) *Page { return s.byPath[path] }

// HomePage returns the site's root page.
func (s *Site) HomePage() *Page { return s.pages[0] }

// PopularPage draws a page according to the Zipf popularity distribution.
func (s *Site) PopularPage() *Page {
	s.popMu.Lock()
	idx := s.pop.Next()
	s.popMu.Unlock()
	return s.pages[idx]
}

// Paths returns all servable object paths in sorted order.
func (s *Site) Paths() []string {
	out := make([]string, 0, len(s.objects))
	for p := range s.objects {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a request path (query string allowed) to an object.
// Unknown paths yield a 404 object; CGI paths yield dynamic objects:
// roughly 30% respond with a redirect (302) back to a static page and a
// small fraction fail with 5xx, mimicking real dynamic endpoints so that
// response-code distributions are realistic.
func (s *Site) Lookup(path string) Object {
	clean := path
	if i := strings.IndexByte(clean, '?'); i >= 0 {
		clean = clean[:i]
	}
	if obj, ok := s.objects[clean]; ok {
		return obj
	}
	if strings.HasPrefix(clean, "/cgi-bin/") {
		return s.cgiResponse(path)
	}
	return Object{Status: http.StatusNotFound, ContentType: "text/html",
		Body: []byte("<html><head><title>404 Not Found</title></head><body><h1>Not Found</h1></body></html>")}
}

// cgiResponse deterministically derives a dynamic response from the request
// path so repeated requests to the same URL behave consistently.
func (s *Site) cgiResponse(path string) Object {
	h := uint64(14695981039346656037)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= 1099511628211
	}
	switch h % 10 {
	case 0, 1, 2: // redirect back into the static site
		target := s.pages[int(h/10)%len(s.pages)].Path
		return Object{Status: http.StatusFound, ContentType: "text/html", RedirectTo: target,
			Body: []byte("<html><body>Moved <a href=\"" + target + "\">here</a></body></html>")}
	case 3: // server error
		return Object{Status: http.StatusInternalServerError, ContentType: "text/html",
			Body: []byte("<html><body><h1>500 Internal Server Error</h1></body></html>")}
	default:
		body := fmt.Sprintf("<html><head><title>Results</title></head><body><h1>Query results</h1><p>for %s</p></body></html>", path)
		return Object{Status: http.StatusOK, ContentType: "text/html; charset=utf-8", Body: []byte(body)}
	}
}

// Handler returns an http.Handler serving the site, usable as the origin in
// integration tests and in the example programs.
func (s *Site) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obj := s.Lookup(r.URL.RequestURI())
		if obj.RedirectTo != "" {
			w.Header().Set("Location", obj.RedirectTo)
		}
		w.Header().Set("Content-Type", obj.ContentType)
		w.WriteHeader(obj.Status)
		if r.Method != http.MethodHead {
			_, _ = w.Write(obj.Body)
		}
	})
}

// renderHTML produces the page markup: head with CSS link and script, body
// with visible anchors, embedded images, CGI links and filler text.
func renderHTML(host string, p *Page) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s %s</title>\n", host, p.Path)
	fmt.Fprintf(&b, "<link rel=\"stylesheet\" type=\"text/css\" href=\"%s\">\n", p.CSS)
	fmt.Fprintf(&b, "<script type=\"text/javascript\" src=\"%s\"></script>\n", p.Script)
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>Page %s</h1>\n", p.Path)
	b.WriteString("<ul>\n")
	for i, l := range p.Links {
		fmt.Fprintf(&b, "<li><a href=\"%s\">Link %d</a></li>\n", l, i)
	}
	b.WriteString("</ul>\n")
	for _, img := range p.Images {
		fmt.Fprintf(&b, "<img src=\"%s\" alt=\"photo\">\n", img)
	}
	for _, cgi := range p.CGILinks {
		fmt.Fprintf(&b, "<a href=\"%s\">Search</a>\n", cgi)
	}
	b.WriteString("<p>")
	b.WriteString(fillerText(p.TextBytes))
	b.WriteString("</p>\n</body>\n</html>\n")
	return b.String()
}

func renderCSS(path string, size int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* %s */\nbody { font-family: sans-serif; margin: 2em; }\n", path)
	for b.Len() < size {
		fmt.Fprintf(&b, ".c%d { color: #%06x; padding: %dpx; }\n", b.Len(), b.Len()*2654435761%0xffffff, b.Len()%17)
	}
	return b.String()
}

func renderJS(path string, size int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s\nfunction init() { return true; }\n", path)
	for b.Len() < size {
		fmt.Fprintf(&b, "var v%d = %d;\n", b.Len(), b.Len()*31)
	}
	return b.String()
}

const loremChunk = "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod tempor incididunt ut labore et dolore magna aliqua "

func fillerText(n int) string {
	if n <= 0 {
		return ""
	}
	var b strings.Builder
	for b.Len() < n {
		b.WriteString(loremChunk)
	}
	return b.String()[:n]
}

func fillerBytes(n int, fill byte) []byte {
	if n <= 0 {
		return nil
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = fill
	}
	return buf
}
