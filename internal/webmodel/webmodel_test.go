package webmodel

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestGenerateDefaults(t *testing.T) {
	s := Generate(SiteConfig{Seed: 1})
	if s.Host() != "www.example.com" {
		t.Fatalf("Host = %q", s.Host())
	}
	if s.NumPages() != 100 {
		t.Fatalf("NumPages = %d", s.NumPages())
	}
	if s.HomePage().Path != "/" {
		t.Fatalf("home path = %q", s.HomePage().Path)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SiteConfig{Seed: 42, NumPages: 20})
	b := Generate(SiteConfig{Seed: 42, NumPages: 20})
	if len(a.Paths()) != len(b.Paths()) {
		t.Fatal("same seed produced different object sets")
	}
	for i, p := range a.Pages() {
		q := b.Pages()[i]
		if p.Path != q.Path || len(p.Links) != len(q.Links) || len(p.Images) != len(q.Images) {
			t.Fatalf("page %d differs between same-seed sites", i)
		}
	}
	c := Generate(SiteConfig{Seed: 43, NumPages: 20})
	diff := false
	for i := range a.Pages() {
		if len(a.Pages()[i].Links) != len(c.Pages()[i].Links) || len(a.Pages()[i].Images) != len(c.Pages()[i].Images) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced structurally identical sites")
	}
}

func TestEveryPageHasStructure(t *testing.T) {
	s := Generate(SiteConfig{Seed: 7, NumPages: 50})
	for _, p := range s.Pages() {
		if len(p.Links) == 0 {
			t.Fatalf("page %s has no links", p.Path)
		}
		if p.CSS == "" || p.Script == "" {
			t.Fatalf("page %s missing CSS or script", p.Path)
		}
		for _, l := range p.Links {
			if s.Page(l) == nil {
				t.Fatalf("page %s links to unknown page %s", p.Path, l)
			}
		}
	}
}

func TestLookupPagesAndObjects(t *testing.T) {
	s := Generate(SiteConfig{Seed: 11, NumPages: 10})
	home := s.Lookup("/")
	if home.Status != http.StatusOK || !strings.Contains(home.ContentType, "text/html") {
		t.Fatalf("home lookup = %+v", home)
	}
	body := string(home.Body)
	if !strings.Contains(body, "<link rel=\"stylesheet\"") || !strings.Contains(body, "<script") ||
		!strings.Contains(body, "<a href=") {
		t.Fatal("home page markup missing expected elements")
	}
	p := s.Pages()[1]
	css := s.Lookup(p.CSS)
	if css.Status != http.StatusOK || css.ContentType != "text/css" || len(css.Body) == 0 {
		t.Fatalf("css lookup = %+v", css)
	}
	js := s.Lookup(p.Script)
	if js.Status != http.StatusOK || js.ContentType != "application/javascript" {
		t.Fatalf("js lookup = %+v", js)
	}
	if len(p.Images) > 0 {
		img := s.Lookup(p.Images[0])
		if img.Status != http.StatusOK || img.ContentType != "image/jpeg" {
			t.Fatalf("image lookup = %+v", img)
		}
	}
	if s.Lookup("/no/such/path.html").Status != http.StatusNotFound {
		t.Fatal("unknown path should 404")
	}
	if s.Lookup("/robots.txt").Status != http.StatusOK {
		t.Fatal("robots.txt missing")
	}
	if s.Lookup("/favicon.ico").Status != http.StatusOK {
		t.Fatal("favicon missing")
	}
}

func TestCGIBehaviourDeterministic(t *testing.T) {
	s := Generate(SiteConfig{Seed: 13, NumPages: 10})
	a := s.Lookup("/cgi-bin/app0.cgi?page=3")
	b := s.Lookup("/cgi-bin/app0.cgi?page=3")
	if a.Status != b.Status || a.RedirectTo != b.RedirectTo {
		t.Fatal("CGI responses not deterministic for identical URLs")
	}
	// Over many distinct CGI URLs we should observe 200s, 3xx and 5xx.
	var ok200, redir, fail int
	for i := 0; i < 200; i++ {
		obj := s.Lookup("/cgi-bin/app1.cgi?q=" + strings.Repeat("x", i%7) + string(rune('a'+i%26)))
		switch {
		case obj.Status == http.StatusOK:
			ok200++
		case obj.Status/100 == 3:
			redir++
			if obj.RedirectTo == "" {
				t.Fatal("redirect object missing target")
			}
			if s.Page(obj.RedirectTo) == nil {
				t.Fatalf("redirect target %q is not a site page", obj.RedirectTo)
			}
		case obj.Status/100 == 5:
			fail++
		}
	}
	if ok200 == 0 || redir == 0 || fail == 0 {
		t.Fatalf("CGI status mix degenerate: 200=%d 3xx=%d 5xx=%d", ok200, redir, fail)
	}
}

func TestPopularPageSkew(t *testing.T) {
	s := Generate(SiteConfig{Seed: 17, NumPages: 50, PopularitySkew: 1.1})
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[s.PopularPage().Path]++
	}
	if counts["/"] == 0 {
		t.Fatal("home page never drawn")
	}
	// The most popular page should be drawn far more often than a mid-rank page.
	if counts["/"] < counts["/page25.html"] {
		t.Fatalf("popularity skew not visible: home=%d page25=%d", counts["/"], counts["/page25.html"])
	}
}

func TestHandlerServesSite(t *testing.T) {
	s := Generate(SiteConfig{Seed: 19, NumPages: 5})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("GET /: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}

	headReq, _ := http.NewRequest(http.MethodHead, srv.URL+"/", nil)
	headResp, err := http.DefaultClient.Do(headReq)
	if err != nil {
		t.Fatalf("HEAD /: %v", err)
	}
	headResp.Body.Close()
	if headResp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status = %d", headResp.StatusCode)
	}

	missing, err := http.Get(srv.URL + "/definitely-missing.html")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing page status = %d", missing.StatusCode)
	}
}

func TestFillerHelpers(t *testing.T) {
	if fillerText(0) != "" || fillerText(-5) != "" {
		t.Fatal("fillerText should be empty for non-positive sizes")
	}
	if len(fillerText(100)) != 100 {
		t.Fatal("fillerText length mismatch")
	}
	if fillerBytes(0, 'x') != nil {
		t.Fatal("fillerBytes(0) should be nil")
	}
	if len(fillerBytes(77, 'x')) != 77 {
		t.Fatal("fillerBytes length mismatch")
	}
}

func TestPathsSortedAndComplete(t *testing.T) {
	s := Generate(SiteConfig{Seed: 23, NumPages: 10})
	paths := s.Paths()
	for i := 1; i < len(paths); i++ {
		if paths[i-1] >= paths[i] {
			t.Fatal("Paths not sorted or contains duplicates")
		}
	}
	found := map[string]bool{}
	for _, p := range paths {
		found[p] = true
	}
	for _, want := range []string{"/", "/robots.txt", "/favicon.ico"} {
		if !found[want] {
			t.Fatalf("Paths missing %q", want)
		}
	}
}
