package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentSum(t *testing.T) {
	c := NewCounter()
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("Value() = %d, want %d", got, workers*each)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(time.Millisecond)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %d, want 7", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	h.Observe(500 * time.Nanosecond)  // bucket 0 (le 1 µs)
	h.Observe(1500 * time.Nanosecond) // bucket 1 (le 2 µs)
	h.Observe(3 * time.Millisecond)   // bucket 12 (le 4096 µs)
	h.Observe(2 * time.Minute)        // +Inf overflow
	h.Observe(-time.Second)           // clamped to 0, bucket 0

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	wantSum := 500*time.Nanosecond + 1500*time.Nanosecond + 3*time.Millisecond + 2*time.Minute
	if s.Sum != wantSum {
		t.Fatalf("Sum = %v, want %v", s.Sum, wantSum)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[12] != 1 || s.Buckets[NumBuckets] != 1 {
		t.Fatalf("bucket placement wrong: %v", s.Buckets)
	}
	if got := s.Mean(); got != wantSum/5 {
		t.Fatalf("Mean() = %v, want %v", got, wantSum/5)
	}
	// The p50 target rank is ⌈0.5·5⌉ = 3, reached in bucket 1: bound 2 µs.
	if got := s.Quantile(0.5); got != 2*time.Microsecond {
		t.Fatalf("Quantile(0.5) = %v, want 2µs", got)
	}
	// The p99 lands in the overflow bucket: the sentinel distinguishes "past
	// the measurable range" from a genuine last-finite-bucket observation.
	if got := s.Quantile(0.99); got != OverflowBound {
		t.Fatalf("Quantile(0.99) = %v, want overflow sentinel %v", got, OverflowBound)
	}
	if d, ok := s.QuantileOK(0.99); ok || d != BucketBound(NumBuckets-1) {
		t.Fatalf("QuantileOK(0.99) = (%v, %v), want floor %v and ok=false", d, ok, BucketBound(NumBuckets-1))
	}
	if d, ok := s.QuantileOK(0.5); !ok || d != 2*time.Microsecond {
		t.Fatalf("QuantileOK(0.5) = (%v, %v), want (2µs, true)", d, ok)
	}
	if OverflowBound <= BucketBound(NumBuckets-1) {
		t.Fatal("OverflowBound must exceed every finite bucket bound")
	}
}

func TestBucketBound(t *testing.T) {
	if got := BucketBound(0); got != time.Microsecond {
		t.Fatalf("BucketBound(0) = %v", got)
	}
	if got := BucketBound(10); got != 1024*time.Microsecond {
		t.Fatalf("BucketBound(10) = %v", got)
	}
	if BucketBound(-1) != time.Microsecond || BucketBound(NumBuckets+5) != BucketBound(NumBuckets-1) {
		t.Fatal("BucketBound must clamp out-of-range indexes")
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := Label("kind", "a\"b\\c\nd"); got != `kind="a\"b\\c\nd"` {
		t.Fatalf("Label() = %s", got)
	}
	if got := Join(Label("a", "1"), "", Label("b", "2")); got != `a="1",b="2"` {
		t.Fatalf("Join() = %s", got)
	}
	if got := Join("", ""); got != "" {
		t.Fatalf("Join of empties = %q", got)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge type clash")
		}
	}()
	reg := NewRegistry()
	reg.Counter("clash_total", "", "h", NewCounter())
	reg.Gauge("clash_total", "", "h", NewGauge())
}

// TestWritePrometheusGolden pins the exposition byte-for-byte: family
// ordering (sorted by name), help and label escaping, cumulative histogram
// buckets with the fixed le bounds, integer-vs-float value formatting.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter()
	c.Add(41)
	c.Inc()
	reg.Counter("test_requests_total", "", "Total requests.", c)
	reg.CounterFunc("test_labeled_total", Label("kind", "we\"ird\\"), "Labeled.", func() float64 { return 7 })
	g := NewGauge()
	g.Set(3)
	reg.Gauge("test_active", "", "Active\nthings.", g)
	h := NewHistogram()
	h.Observe(500 * time.Nanosecond)
	h.Observe(1500 * time.Nanosecond)
	h.Observe(3 * time.Millisecond)
	reg.Histogram("test_latency_seconds", "", "Latency.", h)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_active Active\nthings.
# TYPE test_active gauge
test_active 3
# HELP test_labeled_total Labeled.
# TYPE test_labeled_total counter
test_labeled_total{kind="we\"ird\\"} 7
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="1e-06"} 1
test_latency_seconds_bucket{le="2e-06"} 2
test_latency_seconds_bucket{le="4e-06"} 2
test_latency_seconds_bucket{le="8e-06"} 2
test_latency_seconds_bucket{le="1.6e-05"} 2
test_latency_seconds_bucket{le="3.2e-05"} 2
test_latency_seconds_bucket{le="6.4e-05"} 2
test_latency_seconds_bucket{le="0.000128"} 2
test_latency_seconds_bucket{le="0.000256"} 2
test_latency_seconds_bucket{le="0.000512"} 2
test_latency_seconds_bucket{le="0.001024"} 2
test_latency_seconds_bucket{le="0.002048"} 2
test_latency_seconds_bucket{le="0.004096"} 3
test_latency_seconds_bucket{le="0.008192"} 3
test_latency_seconds_bucket{le="0.016384"} 3
test_latency_seconds_bucket{le="0.032768"} 3
test_latency_seconds_bucket{le="0.065536"} 3
test_latency_seconds_bucket{le="0.131072"} 3
test_latency_seconds_bucket{le="0.262144"} 3
test_latency_seconds_bucket{le="0.524288"} 3
test_latency_seconds_bucket{le="1.048576"} 3
test_latency_seconds_bucket{le="2.097152"} 3
test_latency_seconds_bucket{le="4.194304"} 3
test_latency_seconds_bucket{le="8.388608"} 3
test_latency_seconds_bucket{le="16.777216"} 3
test_latency_seconds_bucket{le="33.554432"} 3
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 0.003002
test_latency_seconds_count 3
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 42
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestScrapeReentrantRegistration pins that a scrape-time collector callback
// may register new metrics on the same registry without deadlocking: the
// render loop runs with the registry mutex released. The late registration
// becomes visible from the next scrape.
func TestScrapeReentrantRegistration(t *testing.T) {
	reg := NewRegistry()
	registered := false
	reg.CounterFunc("reentrant_total", "", "h", func() float64 {
		if !registered {
			registered = true
			reg.CounterFunc("late_total", "", "h", func() float64 { return 1 })
		}
		return 1
	})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "reentrant_total 1") {
		t.Fatalf("first scrape missing reentrant_total:\n%s", sb.String())
	}
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "late_total 1") {
		t.Fatalf("second scrape missing lazily registered late_total:\n%s", sb.String())
	}
}

// TestScrapeWhileWriting hammers every write-side primitive from many
// goroutines while the registry renders continuously. Run under -race this
// is the writers-vs-scraper data-race check; in any mode it verifies the
// scrape observes monotone totals.
func TestScrapeWhileWriting(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter()
	g := NewGauge()
	h := NewHistogram()
	reg.Counter("hammer_total", "", "h", c)
	reg.Gauge("hammer_active", "", "h", g)
	reg.Histogram("hammer_seconds", "", "h", h)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(n)
				h.Observe(time.Duration(n) * time.Microsecond)
			}
		}(int64(i + 1))
	}

	var last int64
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		total := c.Value()
		if total < last {
			t.Fatalf("counter went backwards: %d after %d", total, last)
		}
		last = total
		s := h.Snapshot()
		var cum int64
		for _, b := range s.Buckets {
			cum += b
		}
		if cum != s.Count {
			t.Fatalf("snapshot buckets sum %d != count %d", cum, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}
