// Package telemetry is the runtime observability layer the allocation-free
// serve path can afford. Its write-side primitives — Counter, Gauge and
// Histogram — are lock-free and allocation-free: Inc/Add/Observe touch one
// cache-line-padded atomic stripe and nothing else, mirroring the
// atomic-mirror pattern of core.Stats and keystore.Stats. The read side
// (Registry.WritePrometheus) assembles a Prometheus text-format exposition
// without ever stopping writers: scraping takes no lock the serve path can
// contend on, it only sums the stripes with atomic loads.
//
// Counters and histograms are striped by a per-goroutine hint derived from
// the current stack address, so goroutines on different cores land on
// different cache lines and a hot counter never serialises the fleet the way
// a single shared atomic would. A scrape therefore observes each stripe at a
// slightly different instant; totals are monotone and at most a handful of
// in-flight increments stale, which is exactly the consistency Prometheus
// scrapes assume.
package telemetry

import (
	"sync/atomic"
	"unsafe"
)

// counterStripes is the number of independent cache lines a Counter spreads
// its increments over. 16 stripes keep a globally hot counter (every request
// on every core) from ping-ponging one line between sockets while costing
// exactly 1 KiB per counter.
const counterStripes = 16

// stripeHint derives a cheap per-goroutine stripe selector from the address
// of a stack variable: distinct goroutines run on distinct stacks, so the
// mixed address declusters them across stripes without any runtime hook,
// thread-local or allocation. The address is consumed immediately (converted
// to uintptr, never stored), so the variable does not escape; a goroutine
// whose stack moves simply migrates to another stripe, which is harmless.
func stripeHint() uint64 {
	var b byte
	p := uint64(uintptr(unsafe.Pointer(&b)))
	p ^= p >> 33
	p *= 0x9e3779b97f4a7c15
	return p >> 48
}

// counterStripe is one padded counter cell: the value plus enough padding to
// keep neighbouring stripes on separate cache lines.
type counterStripe struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotone counter safe for concurrent use. Inc and Add are
// lock-free and allocation-free; Value sums the stripes. The zero value is
// ready to use, and a nil *Counter is a no-op so optional instrumentation
// never needs guarding.
type Counter struct {
	stripes [counterStripes]counterStripe
}

// NewCounter returns a new Counter.
func NewCounter() *Counter { return new(Counter) }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are the caller's mistake; Prometheus
// counters must be monotone).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.stripes[stripeHint()%counterStripes].n.Add(delta)
}

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value (live sessions, queue depth). Set,
// Add and Value are single atomic operations: gauges are updated far less
// often than counters, so they are not striped.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a new Gauge.
func NewGauge() *Gauge { return new(Gauge) }

// Set stores the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
