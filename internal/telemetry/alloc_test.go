package telemetry

import (
	"testing"
	"time"
)

// The whole point of the package is that the serve path can call these on
// every request: each write-side primitive is pinned at exactly zero
// allocations per operation.

func TestCounterIncAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	c := NewCounter()
	if avg := testing.AllocsPerRun(1000, c.Inc); avg != 0 {
		t.Fatalf("Counter.Inc allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { c.Add(3) }); avg != 0 {
		t.Fatalf("Counter.Add allocates %.1f/op, want 0", avg)
	}
}

func TestGaugeSetAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	g := NewGauge()
	if avg := testing.AllocsPerRun(1000, func() { g.Set(7) }); avg != 0 {
		t.Fatalf("Gauge.Set allocates %.1f/op, want 0", avg)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	h := NewHistogram()
	if avg := testing.AllocsPerRun(1000, func() { h.Observe(123 * time.Microsecond) }); avg != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op, want 0", avg)
	}
	start := time.Now()
	if avg := testing.AllocsPerRun(1000, func() { h.ObserveSince(start) }); avg != 0 {
		t.Fatalf("Histogram.ObserveSince allocates %.1f/op, want 0", avg)
	}
}

func TestNilInstrumentsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	var c *Counter
	var h *Histogram
	if avg := testing.AllocsPerRun(1000, func() { c.Inc(); h.Observe(time.Millisecond) }); avg != 0 {
		t.Fatalf("nil instrument calls allocate %.1f/op, want 0", avg)
	}
}
