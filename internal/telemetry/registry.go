package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ContentType is the Prometheus text exposition content type, for handlers
// serving WritePrometheus output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Registry holds named metric families and renders them in the Prometheus
// text exposition format. Registration takes the registry mutex; the metric
// write paths (Counter.Inc, Histogram.Observe, …) never touch the registry
// at all, so scraping cannot contend with serving. A family may hold many
// collectors (e.g. one labelled counter per beacon kind, or one per fleet
// node) — they are rendered in registration order under one HELP/TYPE
// header, and families are rendered sorted by name so the exposition is
// byte-stable for a given sequence of observations.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: its metadata and its collectors.
type family struct {
	name, help, typ string
	collectors      []collector
}

// collector renders one metric instance's sample lines.
type collector interface {
	collect(buf []byte, name string) []byte
}

// NewRegistry creates an empty Registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family returns (creating if needed) the family for name, enforcing that a
// name never changes type. The first registration's help text wins.
func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	return f
}

// Counter registers a counter under name with the given pre-rendered labels
// (see Label/Join; "" for none).
func (r *Registry) Counter(name, labels, help string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	f.collectors = append(f.collectors, valueCollector{labels: labels, value: func() float64 { return float64(c.Value()) }})
}

// CounterFunc registers a counter whose value is read at scrape time — the
// bridge for components that already maintain their own atomic counters
// (core.Stats, keystore.Stats, policy.Stats) and should not pay for a second
// increment on the serve path.
func (r *Registry) CounterFunc(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	f.collectors = append(f.collectors, valueCollector{labels: labels, value: fn})
}

// Gauge registers a gauge under name.
func (r *Registry) Gauge(name, labels, help string, g *Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	f.collectors = append(f.collectors, valueCollector{labels: labels, value: func() float64 { return float64(g.Value()) }})
}

// GaugeFunc registers a gauge collector that may emit any number of labelled
// samples at scrape time (e.g. one per shard). The emit callback appends one
// sample with the given pre-rendered labels.
func (r *Registry) GaugeFunc(name, help string, fn func(emit func(labels string, v float64))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	f.collectors = append(f.collectors, funcCollector(fn))
}

// Histogram registers a histogram under name.
func (r *Registry) Histogram(name, labels, help string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	f.collectors = append(f.collectors, histCollector{labels: labels, h: h})
}

// WritePrometheus renders every registered family in the text exposition
// format: families sorted by name, collectors within a family in
// registration order.
//
// The family list (and each family's collector slice header) is copied under
// the registry mutex, then rendered with the mutex released: scrape-time
// collector callbacks (CounterFunc, GaugeFunc) are free to call back into
// the registry — e.g. lazy registration — without self-deadlocking, and a
// slow callback never blocks concurrent registrations. Collectors registered
// mid-scrape appear from the next scrape on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, *f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	buf := make([]byte, 0, 4096)
	for i := range fams {
		f := &fams[i]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(f.help)...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ...)
		buf = append(buf, '\n')
		for _, c := range f.collectors {
			buf = c.collect(buf, f.name)
		}
	}
	_, err := w.Write(buf)
	return err
}

// valueCollector renders one sample from a scrape-time value function.
type valueCollector struct {
	labels string
	value  func() float64
}

func (c valueCollector) collect(buf []byte, name string) []byte {
	return appendSample(buf, name, c.labels, c.value())
}

// funcCollector renders whatever samples its function emits.
type funcCollector func(emit func(labels string, v float64))

func (c funcCollector) collect(buf []byte, name string) []byte {
	c(func(labels string, v float64) {
		buf = appendSample(buf, name, labels, v)
	})
	return buf
}

// histCollector renders a histogram's cumulative buckets, sum and count.
type histCollector struct {
	labels string
	h      *Histogram
}

func (c histCollector) collect(buf []byte, name string) []byte {
	s := c.h.Snapshot()
	var cum int64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		le := `le="` + bucketLE[i] + `"`
		labels := le
		if c.labels != "" {
			labels = c.labels + "," + le
		}
		buf = appendSample(buf, name+"_bucket", labels, float64(cum))
	}
	buf = appendSample(buf, name+"_sum", c.labels, s.Sum.Seconds())
	buf = appendSample(buf, name+"_count", c.labels, float64(s.Count))
	return buf
}

// appendSample appends one "name{labels} value\n" line.
func appendSample(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = appendValue(buf, v)
	return append(buf, '\n')
}

// appendValue formats v the way Prometheus expects: integral values without
// an exponent or decimal point, everything else in Go's shortest 'g' form.
func appendValue(buf []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// helpEscaper escapes HELP text per the exposition format.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// Label renders one key="value" label pair with the value escaped, for the
// pre-rendered labels the registration calls take.
func Label(key, value string) string {
	return key + `="` + labelEscaper.Replace(value) + `"`
}

// Join combines pre-rendered label pairs, skipping empties.
func Join(labels ...string) string {
	out := ""
	for _, l := range labels {
		if l == "" {
			continue
		}
		if out != "" {
			out += ","
		}
		out += l
	}
	return out
}
