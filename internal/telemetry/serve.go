package telemetry

// Stage label values for the per-stage latency histogram family. One
// histogram family with a stage label — rather than one family per stage —
// keeps dashboards to a single query and the exposition compact.
const (
	StageProxyRequest  = "proxy_request"           // whole request through the middleware
	StageBeacon        = "beacon"                  // HandleBeacon dispatch
	StagePrepare       = "prepare_instrumentation" // key issue + script render + fragment compose
	StageKeystoreIssue = "keystore_issue"          // the key-issue slice of prepare
	StageClassify      = "classify_recompute"      // verdict chain on a cache miss
	StageRewrite       = "rewrite_stream"          // StreamRewriter splice time (write + close)
)

// ServeMetrics bundles the hot-path instruments every serving component
// shares: per-stage latency histograms and the counters that cannot be
// derived from existing component stats at scrape time. One ServeMetrics can
// back a single engine or a whole fleet — when cdn nodes share it, their
// observations aggregate into fleet-level histograms while the per-engine
// scrape-time collectors stay distinguishable by node label.
type ServeMetrics struct {
	reg *Registry

	// Per-stage latency histograms (botdetect_stage_duration_seconds).
	ProxyRequest  *Histogram
	Beacon        *Histogram
	Prepare       *Histogram
	KeystoreIssue *Histogram
	Classify      *Histogram
	Rewrite       *Histogram

	// Verdict-cache effectiveness (botdetect_classify_total).
	ClassifyCacheHits  *Counter
	ClassifyRecomputes *Counter

	// Control-plane events.
	ScriptRotations *Counter // botdetect_script_rotations_total
	TrainerRetrains *Counter // botdetect_trainer_retrains_total{result="ok"}
	TrainerErrors   *Counter // botdetect_trainer_retrains_total{result="error"}

	// Request outcomes as the proxy middleware saw them
	// (botdetect_proxy_requests_total). Throttled requests are also counted
	// under origin — a throttle delays, it does not replace, the origin
	// response.
	RequestsOrigin     *Counter
	RequestsBeacon     *Counter
	RequestsBlocked    *Counter
	RequestsChallenged *Counter
	RequestsThrottled  *Counter
	RequestsCaptcha    *Counter
}

// NewServeMetrics creates the serve-path instruments and registers them with
// reg (a fresh registry when nil).
func NewServeMetrics(reg *Registry) *ServeMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	m := &ServeMetrics{
		reg:                reg,
		ProxyRequest:       NewHistogram(),
		Beacon:             NewHistogram(),
		Prepare:            NewHistogram(),
		KeystoreIssue:      NewHistogram(),
		Classify:           NewHistogram(),
		Rewrite:            NewHistogram(),
		ClassifyCacheHits:  NewCounter(),
		ClassifyRecomputes: NewCounter(),
		ScriptRotations:    NewCounter(),
		TrainerRetrains:    NewCounter(),
		TrainerErrors:      NewCounter(),
		RequestsOrigin:     NewCounter(),
		RequestsBeacon:     NewCounter(),
		RequestsBlocked:    NewCounter(),
		RequestsChallenged: NewCounter(),
		RequestsThrottled:  NewCounter(),
		RequestsCaptcha:    NewCounter(),
	}

	const stageHist = "botdetect_stage_duration_seconds"
	stageHelp := "Serve-path stage latency in seconds, log-spaced buckets."
	reg.Histogram(stageHist, Label("stage", StageProxyRequest), stageHelp, m.ProxyRequest)
	reg.Histogram(stageHist, Label("stage", StageBeacon), stageHelp, m.Beacon)
	reg.Histogram(stageHist, Label("stage", StagePrepare), stageHelp, m.Prepare)
	reg.Histogram(stageHist, Label("stage", StageKeystoreIssue), stageHelp, m.KeystoreIssue)
	reg.Histogram(stageHist, Label("stage", StageClassify), stageHelp, m.Classify)
	reg.Histogram(stageHist, Label("stage", StageRewrite), stageHelp, m.Rewrite)

	reg.Counter("botdetect_classify_total", Label("result", "cache_hit"),
		"Classify calls by verdict-cache outcome.", m.ClassifyCacheHits)
	reg.Counter("botdetect_classify_total", Label("result", "recompute"),
		"Classify calls by verdict-cache outcome.", m.ClassifyRecomputes)

	reg.Counter("botdetect_script_rotations_total", "",
		"Script-variant pool rotations (RotateScripts).", m.ScriptRotations)
	reg.Counter("botdetect_trainer_retrains_total", Label("result", "ok"),
		"Online retrain attempts by outcome.", m.TrainerRetrains)
	reg.Counter("botdetect_trainer_retrains_total", Label("result", "error"),
		"Online retrain attempts by outcome.", m.TrainerErrors)

	const reqTotal = "botdetect_proxy_requests_total"
	reqHelp := "Requests through the proxy middleware by outcome."
	reg.Counter(reqTotal, Label("outcome", "origin"), reqHelp, m.RequestsOrigin)
	reg.Counter(reqTotal, Label("outcome", "beacon"), reqHelp, m.RequestsBeacon)
	reg.Counter(reqTotal, Label("outcome", "blocked"), reqHelp, m.RequestsBlocked)
	reg.Counter(reqTotal, Label("outcome", "challenged"), reqHelp, m.RequestsChallenged)
	reg.Counter(reqTotal, Label("outcome", "throttled"), reqHelp, m.RequestsThrottled)
	reg.Counter(reqTotal, Label("outcome", "captcha"), reqHelp, m.RequestsCaptcha)
	return m
}

// Registry returns the registry the instruments are registered with;
// components add their scrape-time collectors (engine stats, shard gauges,
// policy counters) to it.
func (m *ServeMetrics) Registry() *Registry { return m.reg }
