package telemetry

import (
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bucket i has the
// Prometheus upper bound le = 2^i microseconds, so the finite range spans
// 1 µs to ~33.6 s in doubling steps — wide enough for a beacon handled in
// nanoseconds and a retrain that takes seconds — and the bucket index is a
// single bits.Len64, no search. Observations past the last finite bound land
// in the implicit +Inf bucket.
const NumBuckets = 26

// histStripes is the number of independent bucket arrays a Histogram spreads
// observations over (same motivation as Counter's stripes: Observe on every
// core must not share cache lines).
const histStripes = 4

// histStripe is one padded bucket array: 26 finite buckets, the overflow
// bucket and the running sum, padded to a multiple of the cache line.
type histStripe struct {
	buckets [NumBuckets + 1]atomic.Int64
	sumNs   atomic.Int64
	_       [32]byte
}

// Histogram is a fixed-bucket, log-spaced latency histogram safe for
// concurrent use. Observe is lock-free and allocation-free: one bits.Len64,
// two atomic adds. The zero value is ready to use; a nil *Histogram is a
// no-op. Values at an exact power-of-two boundary are credited to the next
// bucket up — cumulative bucket counts stay valid, the bound is just
// conservative by one step, the usual trade for a shift-indexed histogram.
type Histogram struct {
	stripes [histStripes]histStripe
}

// NewHistogram returns a new Histogram.
func NewHistogram() *Histogram { return new(Histogram) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	idx := bits.Len64(uint64(ns) / 1000)
	if idx > NumBuckets {
		idx = NumBuckets
	}
	st := &h.stripes[stripeHint()%histStripes]
	st.buckets[idx].Add(1)
	st.sumNs.Add(ns)
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// Snapshot is a point-in-time copy of a histogram's state, assembled from
// atomic loads without stopping writers.
type Snapshot struct {
	// Buckets holds the per-bucket (non-cumulative) observation counts;
	// Buckets[NumBuckets] is the overflow (+Inf) bucket.
	Buckets [NumBuckets + 1]int64
	// Count is the total number of observations.
	Count int64
	// Sum is the sum of all observed durations.
	Sum time.Duration
}

// Snapshot sums the stripes into a consistent-enough view: each stripe is
// read atomically, so totals are monotone across scrapes even while writers
// race the reader.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.buckets {
			s.Buckets[b] += st.buckets[b].Load()
		}
		s.Sum += time.Duration(st.sumNs.Load())
	}
	for _, n := range s.Buckets {
		s.Count += n
	}
	return s
}

// Mean returns the mean observed duration, or 0 with no observations.
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// OverflowBound is the sentinel Quantile reports when the requested quantile
// lands in the overflow (+Inf) bucket: one doubling past the last finite
// bound (~67 s), so it is greater than every finite BucketBound and a
// dashboard can tell "past the measurable range" (a wedged retrain, a
// stalled rewrite) apart from "genuinely ~33 s". Use QuantileOK to branch on
// overflow explicitly.
const OverflowBound = time.Microsecond << NumBuckets

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket where the cumulative count crosses q·Count. With doubling buckets
// the estimate is at most 2× the true value — the right resolution for
// watching a p99 move, not for microbenchmark arithmetic. A quantile that
// lands in the overflow bucket reports OverflowBound rather than silently
// clamping to the last finite bound.
func (s Snapshot) Quantile(q float64) time.Duration {
	d, ok := s.QuantileOK(q)
	if !ok {
		return OverflowBound
	}
	return d
}

// QuantileOK is Quantile with an explicit overflow signal: ok is false when
// the requested quantile lies beyond the last finite bucket bound, in which
// case the returned duration (the last finite bound) is a floor on the true
// value, not an estimate of it.
func (s Snapshot) QuantileOK(q float64) (time.Duration, bool) {
	if s.Count == 0 {
		return 0, true
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			if i >= NumBuckets {
				break
			}
			return BucketBound(i), true
		}
	}
	return BucketBound(NumBuckets - 1), false
}

// BucketBound returns the upper bound of bucket i (1 µs << i), clamping
// out-of-range indexes to the finite range.
func BucketBound(i int) time.Duration {
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	if i < 0 {
		i = 0
	}
	return time.Microsecond << uint(i)
}

// bucketLE holds the pre-rendered Prometheus le label values for every
// finite bucket, in seconds ("1e-06", "2e-06", ...), plus "+Inf".
var bucketLE = func() [NumBuckets + 1]string {
	var out [NumBuckets + 1]string
	for i := 0; i < NumBuckets; i++ {
		out[i] = strconv.FormatFloat(BucketBound(i).Seconds(), 'g', -1, 64)
	}
	out[NumBuckets] = "+Inf"
	return out
}()
