//go:build !race

package telemetry

// raceEnabled is false without -race; see race_enabled_test.go.
const raceEnabled = false
