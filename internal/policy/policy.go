// Package policy implements the enforcement stage the paper deployed on
// CoDeeN after classification (Section 3.2): once a session is classified as
// a robot, its behaviour is watched against per-behaviour thresholds (CGI
// request rate, GET request rate, error-response share) and traffic is
// rate-limited or blocked as soon as a threshold is exceeded. Human sessions
// can be given a higher bandwidth allowance (the CAPTCHA incentive).
package policy

import (
	"fmt"
	"sync"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/core"
	"botdetect/internal/session"
)

// Action is the policy decision for a request or session.
type Action int

const (
	// Allow lets the traffic through at the normal service level.
	Allow Action = iota
	// Throttle lets the traffic through at a reduced rate.
	Throttle
	// Block rejects the traffic.
	Block
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case Throttle:
		return "throttle"
	case Block:
		return "block"
	default:
		return "allow"
	}
}

// Decision explains a policy outcome.
type Decision struct {
	// Action is what the engine decided.
	Action Action
	// Reason explains the dominant rule.
	Reason string
}

// Thresholds are the per-session behaviour limits applied to robot-classified
// sessions.
type Thresholds struct {
	// MaxRequestRate is the maximum sustained requests/second for a robot
	// session before throttling (0 disables).
	MaxRequestRate float64
	// MaxCGIRate is the maximum CGI requests/second before blocking.
	MaxCGIRate float64
	// MaxErrorShare is the maximum share of 4xx+5xx responses before
	// blocking (robots probing for vulnerabilities trip this).
	MaxErrorShare float64
	// MinRequestsForShare is the minimum request count before the error
	// share rule applies (avoids blocking on one early 404).
	MinRequestsForShare int64
}

// DefaultThresholds mirror the aggressive post-classification limits the
// paper describes deploying on CoDeeN.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxRequestRate:      2.0,
		MaxCGIRate:          0.2,
		MaxErrorShare:       0.3,
		MinRequestsForShare: 20,
	}
}

// Config controls the engine.
type Config struct {
	// Thresholds are the robot-session limits.
	Thresholds Thresholds
	// BlockDuration is how long a blocked session stays blocked.
	BlockDuration time.Duration
	// HumanBandwidthBonus is a multiplicative bandwidth allowance granted to
	// CAPTCHA-verified humans (informational; the proxy applies it).
	HumanBandwidthBonus float64
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.Thresholds == (Thresholds{}) {
		c.Thresholds = DefaultThresholds()
	}
	if c.BlockDuration <= 0 {
		c.BlockDuration = time.Hour
	}
	if c.HumanBandwidthBonus <= 0 {
		c.HumanBandwidthBonus = 2.0
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

// Stats are cumulative counters.
type Stats struct {
	Evaluations int64
	Allowed     int64
	Throttled   int64
	Blocked     int64
	Unblocked   int64
}

// Engine applies the policy. It is safe for concurrent use.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	blocked map[session.Key]time.Time // key -> block expiry
	stats   Stats
}

// NewEngine creates an Engine.
func NewEngine(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), blocked: make(map[session.Key]time.Time)}
}

// Thresholds returns the effective thresholds.
func (e *Engine) Thresholds() Thresholds { return e.cfg.Thresholds }

// HumanBandwidthBonus returns the bandwidth multiplier for verified humans.
func (e *Engine) HumanBandwidthBonus() float64 { return e.cfg.HumanBandwidthBonus }

// Evaluate decides what to do with the session given its current snapshot
// and the detector's verdict. It also updates the engine's block list.
func (e *Engine) Evaluate(snap session.Snapshot, verdict core.Verdict) Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Evaluations++
	now := e.cfg.Clock.Now()

	// Existing block still in force?
	if until, ok := e.blocked[snap.Key]; ok {
		if now.Before(until) {
			e.stats.Blocked++
			return Decision{Action: Block, Reason: "session is blocked"}
		}
		delete(e.blocked, snap.Key)
		e.stats.Unblocked++
	}

	if verdict.Class != core.ClassRobot {
		e.stats.Allowed++
		return Decision{Action: Allow, Reason: "session not classified as robot"}
	}

	th := e.cfg.Thresholds
	dur := snap.Duration().Seconds()
	if dur < 1 {
		dur = 1
	}
	c := snap.Counts

	if th.MaxCGIRate > 0 {
		if rate := float64(c.CGI) / dur; rate > th.MaxCGIRate {
			e.blockLocked(snap.Key, now)
			return Decision{Action: Block, Reason: fmt.Sprintf("robot CGI rate %.2f/s exceeds %.2f/s", rate, th.MaxCGIRate)}
		}
	}
	if th.MaxErrorShare > 0 && c.Total >= th.MinRequestsForShare {
		errShare := float64(c.Status4xx+c.Status5xx) / float64(c.Total)
		if errShare > th.MaxErrorShare {
			e.blockLocked(snap.Key, now)
			return Decision{Action: Block, Reason: fmt.Sprintf("robot error share %.0f%% exceeds %.0f%%", errShare*100, th.MaxErrorShare*100)}
		}
	}
	if th.MaxRequestRate > 0 {
		if rate := float64(c.Total) / dur; rate > th.MaxRequestRate {
			e.stats.Throttled++
			return Decision{Action: Throttle, Reason: fmt.Sprintf("robot request rate %.2f/s exceeds %.2f/s", rate, th.MaxRequestRate)}
		}
	}
	e.stats.Allowed++
	return Decision{Action: Allow, Reason: "robot within behavioural thresholds"}
}

func (e *Engine) blockLocked(key session.Key, now time.Time) {
	e.blocked[key] = now.Add(e.cfg.BlockDuration)
	e.stats.Blocked++
}

// BlockNow explicitly blocks a session (e.g. after an operator decision).
func (e *Engine) BlockNow(key session.Key) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.blockLocked(key, e.cfg.Clock.Now())
}

// IsBlocked reports whether a session is currently blocked.
func (e *Engine) IsBlocked(key session.Key) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	until, ok := e.blocked[key]
	if !ok {
		return false
	}
	if e.cfg.Clock.Now().Before(until) {
		return true
	}
	delete(e.blocked, key)
	e.stats.Unblocked++
	return false
}

// BlockedCount returns the number of sessions currently on the block list
// (including entries whose expiry has passed but has not been observed yet).
func (e *Engine) BlockedCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.blocked)
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Limiter is a token-bucket rate limiter used by the proxy to throttle
// robot-classified sessions. It is safe for concurrent use.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	clk    clock.Clock
}

// NewLimiter creates a token bucket admitting rate requests/second with the
// given burst. Non-positive values are clamped to small positives.
func NewLimiter(rate, burst float64, clk clock.Clock) *Limiter {
	if rate <= 0 {
		rate = 0.1
	}
	if burst <= 0 {
		burst = 1
	}
	if clk == nil {
		clk = clock.System
	}
	return &Limiter{rate: rate, burst: burst, tokens: burst, last: clk.Now(), clk: clk}
}

// Allow consumes one token if available and reports whether the request may
// proceed.
func (l *Limiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clk.Now()
	elapsed := now.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.tokens += elapsed * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
	}
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// Tokens returns the current token count (for tests and monitoring).
func (l *Limiter) Tokens() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tokens
}
