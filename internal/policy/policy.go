// Package policy implements the enforcement stage the paper deployed on
// CoDeeN after classification (Section 3.2): once a session is classified as
// a robot, its behaviour is watched against per-behaviour thresholds (CGI
// request rate, GET request rate, error-response share) and traffic is
// rate-limited or blocked as soon as a threshold is exceeded. Human sessions
// can be given a higher bandwidth allowance (the CAPTCHA incentive).
package policy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/core"
	"botdetect/internal/session"
)

// Action is the policy decision for a request or session.
type Action int

const (
	// Allow lets the traffic through at the normal service level.
	Allow Action = iota
	// Throttle lets the traffic through at a reduced rate.
	Throttle
	// Block rejects the traffic.
	Block
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case Throttle:
		return "throttle"
	case Block:
		return "block"
	default:
		return "allow"
	}
}

// Decision explains a policy outcome.
type Decision struct {
	// Action is what the engine decided.
	Action Action
	// Reason explains the dominant rule.
	Reason string
}

// Thresholds are the per-session behaviour limits applied to robot-classified
// sessions.
type Thresholds struct {
	// MaxRequestRate is the maximum sustained requests/second for a robot
	// session before throttling (0 disables).
	MaxRequestRate float64
	// MaxCGIRate is the maximum CGI requests/second before blocking.
	MaxCGIRate float64
	// MaxErrorShare is the maximum share of 4xx+5xx responses before
	// blocking (robots probing for vulnerabilities trip this).
	MaxErrorShare float64
	// MinRequestsForShare is the minimum request count before the error
	// share rule applies (avoids blocking on one early 404).
	MinRequestsForShare int64
}

// DefaultThresholds mirror the aggressive post-classification limits the
// paper describes deploying on CoDeeN.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxRequestRate:      2.0,
		MaxCGIRate:          0.2,
		MaxErrorShare:       0.3,
		MinRequestsForShare: 20,
	}
}

// Config controls the engine.
type Config struct {
	// Thresholds are the robot-session limits.
	Thresholds Thresholds
	// BlockDuration is how long a blocked session stays blocked.
	BlockDuration time.Duration
	// HumanBandwidthBonus is a multiplicative bandwidth allowance granted to
	// CAPTCHA-verified humans (informational; the proxy applies it).
	HumanBandwidthBonus float64
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.Thresholds == (Thresholds{}) {
		c.Thresholds = DefaultThresholds()
	}
	if c.BlockDuration <= 0 {
		c.BlockDuration = time.Hour
	}
	if c.HumanBandwidthBonus <= 0 {
		c.HumanBandwidthBonus = 2.0
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

// Stats are cumulative counters.
type Stats struct {
	Evaluations int64
	Allowed     int64
	Throttled   int64
	Blocked     int64
	Unblocked   int64
}

// engineStats is the atomic mirror of Stats.
type engineStats struct {
	evaluations atomic.Int64
	allowed     atomic.Int64
	throttled   atomic.Int64
	blocked     atomic.Int64
	unblocked   atomic.Int64
}

// blockedSet is an immutable snapshot of the block list (key -> expiry).
// The enforcement read path loads it through an atomic pointer, so checking
// a request against the block list never takes a lock; mutations (blocking
// a session, expiring a block) copy the map and publish a new snapshot.
// The rule set is read on every request and mutated only when a robot trips
// a threshold, so copy-on-write is the right trade.
type blockedSet struct {
	until map[session.Key]time.Time
}

// Engine applies the policy. It is safe for concurrent use: Evaluate and
// IsBlocked read an atomically published snapshot of the block list, and
// the mutex serialises only the rare copy-on-write mutations.
type Engine struct {
	cfg Config

	blocked atomic.Pointer[blockedSet]
	mu      sync.Mutex // serialises block-list writers
	stats   engineStats
}

// NewEngine creates an Engine.
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg.withDefaults()}
	e.blocked.Store(&blockedSet{until: map[session.Key]time.Time{}})
	return e
}

// lookup returns the block expiry for key from the current snapshot.
func (e *Engine) lookup(key session.Key) (time.Time, bool) {
	until, ok := e.blocked.Load().until[key]
	return until, ok
}

// publishAdd copies the snapshot with key blocked until the given time.
func (e *Engine) publishAdd(key session.Key, until time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.blocked.Load()
	next := make(map[session.Key]time.Time, len(cur.until)+1)
	for k, v := range cur.until {
		next[k] = v
	}
	next[key] = until
	e.blocked.Store(&blockedSet{until: next})
	e.stats.blocked.Add(1)
}

// publishRemoveExpired drops key from the snapshot if its block has expired,
// counting the unblock exactly once even when readers race on the expiry.
// It sweeps every other expired entry in the same copy, so draining a block
// list whose entries lapse together costs one map copy, not one per entry.
func (e *Engine) publishRemoveExpired(key session.Key) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.blocked.Load()
	now := e.cfg.Clock.Now()
	until, ok := cur.until[key]
	if !ok || now.Before(until) {
		return
	}
	next := make(map[session.Key]time.Time, len(cur.until))
	removed := int64(0)
	for k, v := range cur.until {
		if now.Before(v) {
			next[k] = v
		} else {
			removed++
		}
	}
	e.blocked.Store(&blockedSet{until: next})
	e.stats.unblocked.Add(removed)
}

// Thresholds returns the effective thresholds.
func (e *Engine) Thresholds() Thresholds { return e.cfg.Thresholds }

// HumanBandwidthBonus returns the bandwidth multiplier for verified humans.
func (e *Engine) HumanBandwidthBonus() float64 { return e.cfg.HumanBandwidthBonus }

// Evaluate decides what to do with the session given its current snapshot
// and the detector's verdict. It also updates the engine's block list. The
// common path (no block, thresholds honoured) is lock-free.
func (e *Engine) Evaluate(snap session.Snapshot, verdict core.Verdict) Decision {
	e.stats.evaluations.Add(1)
	now := e.cfg.Clock.Now()

	// Existing block still in force?
	if until, ok := e.lookup(snap.Key); ok {
		if now.Before(until) {
			e.stats.blocked.Add(1)
			return Decision{Action: Block, Reason: "session is blocked"}
		}
		e.publishRemoveExpired(snap.Key)
	}

	if verdict.Class != core.ClassRobot {
		e.stats.allowed.Add(1)
		return Decision{Action: Allow, Reason: "session not classified as robot"}
	}

	th := e.cfg.Thresholds
	dur := snap.Duration().Seconds()
	if dur < 1 {
		dur = 1
	}
	c := snap.Counts

	if th.MaxCGIRate > 0 {
		if rate := float64(c.CGI) / dur; rate > th.MaxCGIRate {
			e.publishAdd(snap.Key, now.Add(e.cfg.BlockDuration))
			return Decision{Action: Block, Reason: fmt.Sprintf("robot CGI rate %.2f/s exceeds %.2f/s", rate, th.MaxCGIRate)}
		}
	}
	if th.MaxErrorShare > 0 && c.Total >= th.MinRequestsForShare {
		errShare := float64(c.Status4xx+c.Status5xx) / float64(c.Total)
		if errShare > th.MaxErrorShare {
			e.publishAdd(snap.Key, now.Add(e.cfg.BlockDuration))
			return Decision{Action: Block, Reason: fmt.Sprintf("robot error share %.0f%% exceeds %.0f%%", errShare*100, th.MaxErrorShare*100)}
		}
	}
	if th.MaxRequestRate > 0 {
		if rate := float64(c.Total) / dur; rate > th.MaxRequestRate {
			e.stats.throttled.Add(1)
			return Decision{Action: Throttle, Reason: fmt.Sprintf("robot request rate %.2f/s exceeds %.2f/s", rate, th.MaxRequestRate)}
		}
	}
	e.stats.allowed.Add(1)
	return Decision{Action: Allow, Reason: "robot within behavioural thresholds"}
}

// BlockNow explicitly blocks a session (e.g. after an operator decision).
func (e *Engine) BlockNow(key session.Key) {
	e.publishAdd(key, e.cfg.Clock.Now().Add(e.cfg.BlockDuration))
}

// IsBlocked reports whether a session is currently blocked. The check is
// lock-free unless it observes an expired entry to clean up.
func (e *Engine) IsBlocked(key session.Key) bool {
	until, ok := e.lookup(key)
	if !ok {
		return false
	}
	if e.cfg.Clock.Now().Before(until) {
		return true
	}
	e.publishRemoveExpired(key)
	return false
}

// BlockedCount returns the number of sessions currently on the block list
// (including entries whose expiry has passed but has not been observed yet).
func (e *Engine) BlockedCount() int {
	return len(e.blocked.Load().until)
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Evaluations: e.stats.evaluations.Load(),
		Allowed:     e.stats.allowed.Load(),
		Throttled:   e.stats.throttled.Load(),
		Blocked:     e.stats.blocked.Load(),
		Unblocked:   e.stats.unblocked.Load(),
	}
}

// Limiter is a token-bucket rate limiter used by the proxy to throttle
// robot-classified sessions. It is safe for concurrent use.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	clk    clock.Clock
}

// NewLimiter creates a token bucket admitting rate requests/second with the
// given burst. Non-positive values are clamped to small positives.
func NewLimiter(rate, burst float64, clk clock.Clock) *Limiter {
	if rate <= 0 {
		rate = 0.1
	}
	if burst <= 0 {
		burst = 1
	}
	if clk == nil {
		clk = clock.System
	}
	return &Limiter{rate: rate, burst: burst, tokens: burst, last: clk.Now(), clk: clk}
}

// Allow consumes one token if available and reports whether the request may
// proceed.
func (l *Limiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clk.Now()
	elapsed := now.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.tokens += elapsed * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
	}
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// Tokens returns the current token count (for tests and monitoring).
func (l *Limiter) Tokens() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tokens
}
