// Package policy implements the enforcement stage the paper deployed on
// CoDeeN after classification (Section 3.2). Enforcement is driven by
// verdict transitions rather than raw counters: a session starts in the
// monitor stage, is challenged (offered a CAPTCHA) the moment the detection
// chain first classifies it as a robot, and is blocked when it keeps
// behaving like a robot under challenge — definite evidence that ignores the
// challenge, or behaviour past the paper's per-session thresholds (CGI
// request rate, error-response share). A definite human verdict (input
// events, a passed CAPTCHA) de-escalates the session back to monitor, and
// verified humans can be given a higher bandwidth allowance (the CAPTCHA
// incentive).
package policy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/detect"
	"botdetect/internal/session"
	"botdetect/internal/telemetry"
)

// Action is the policy decision for a request.
type Action int

const (
	// Allow lets the traffic through at the normal service level.
	Allow Action = iota
	// Challenge serves a CAPTCHA interstitial instead of origin content; it
	// is returned exactly once, on the monitor→challenge transition.
	Challenge
	// Throttle lets the traffic through at a reduced rate.
	Throttle
	// Block rejects the traffic.
	Block
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case Challenge:
		return "challenge"
	case Throttle:
		return "throttle"
	case Block:
		return "block"
	default:
		return "allow"
	}
}

// Stage is a session's position on the escalation ladder.
type Stage int

const (
	// StageMonitor means no robot verdict has been acted on.
	StageMonitor Stage = iota
	// StageChallenge means the session was classified robot and challenged.
	StageChallenge
	// StageBlock means the session is blocked until the block expires.
	StageBlock
)

// String returns the stage name.
func (s Stage) String() string {
	switch s {
	case StageChallenge:
		return "challenge"
	case StageBlock:
		return "block"
	default:
		return "monitor"
	}
}

// Decision explains a policy outcome.
type Decision struct {
	// Action is what the engine decided for this request.
	Action Action
	// Stage is the session's escalation stage after the decision.
	Stage Stage
	// Reason explains the dominant rule.
	Reason string
}

// Thresholds are the per-session behaviour limits applied to sessions in the
// challenge stage — robots that keep going instead of proving humanity.
type Thresholds struct {
	// MaxRequestRate is the maximum sustained requests/second for a
	// challenged robot session before throttling (0 disables).
	MaxRequestRate float64
	// MaxCGIRate is the maximum CGI requests/second before blocking.
	MaxCGIRate float64
	// MaxErrorShare is the maximum share of 4xx+5xx responses before
	// blocking (robots probing for vulnerabilities trip this).
	MaxErrorShare float64
	// MinRequestsForShare is the minimum request count before the error
	// share rule applies (avoids blocking on one early 404).
	MinRequestsForShare int64
}

// DefaultThresholds mirror the aggressive post-classification limits the
// paper describes deploying on CoDeeN.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxRequestRate:      2.0,
		MaxCGIRate:          0.2,
		MaxErrorShare:       0.3,
		MinRequestsForShare: 20,
	}
}

// Config controls the engine.
type Config struct {
	// Thresholds are the challenged-robot behaviour limits.
	Thresholds Thresholds
	// BlockDuration is how long a blocked session stays blocked.
	BlockDuration time.Duration
	// ChallengeGraceRequests is how many further requests a session with a
	// definite robot verdict may make after being challenged before the
	// ladder escalates to block regardless of rates — direct evidence plus
	// an ignored challenge is as certain as enforcement gets (default 25).
	ChallengeGraceRequests int64
	// HumanBandwidthBonus is a multiplicative bandwidth allowance granted to
	// CAPTCHA-verified humans (informational; the proxy applies it).
	HumanBandwidthBonus float64
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.Thresholds == (Thresholds{}) {
		c.Thresholds = DefaultThresholds()
	}
	if c.BlockDuration <= 0 {
		c.BlockDuration = time.Hour
	}
	if c.ChallengeGraceRequests <= 0 {
		c.ChallengeGraceRequests = 25
	}
	if c.HumanBandwidthBonus <= 0 {
		c.HumanBandwidthBonus = 2.0
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

// Stats are cumulative counters.
type Stats struct {
	Evaluations  int64
	Allowed      int64
	Challenged   int64
	Throttled    int64
	Blocked      int64
	RemoteBlocks int64
	Unblocked    int64
	DeEscalated  int64
}

// engineStats is the atomic mirror of Stats.
type engineStats struct {
	evaluations  atomic.Int64
	allowed      atomic.Int64
	challenged   atomic.Int64
	throttled    atomic.Int64
	blocked      atomic.Int64
	remoteBlocks atomic.Int64
	unblocked    atomic.Int64
	deescalated  atomic.Int64
}

// stageState is one session's position on the ladder.
type stageState struct {
	stage Stage
	// enteredTotal is the session's request count when it entered the stage,
	// for the challenge-grace computation.
	enteredTotal int64
	// until is the block expiry (block stage only).
	until time.Time
}

// stageSet is an immutable snapshot of the per-session ladder state. The
// enforcement read path loads it through an atomic pointer, so checking a
// request never takes a lock; mutations (stage transitions, block expiry)
// copy the map and publish a new snapshot. Transitions are rare — at most a
// handful per session lifetime — so copy-on-write is the right trade.
type stageSet struct {
	m map[session.Key]stageState
}

// Engine applies the policy. It is safe for concurrent use: Evaluate and
// IsBlocked read an atomically published snapshot of the ladder state, and
// the mutex serialises only the rare copy-on-write transitions.
type Engine struct {
	cfg Config

	stages atomic.Pointer[stageSet]
	mu     sync.Mutex // serialises stage writers
	stats  engineStats

	// onBlock, when set, receives every LOCALLY decided block (never one
	// applied via BlockUntil) so the fleet layer can replicate it without
	// echo loops. Atomic: the block path reads it lock-free.
	onBlock atomic.Pointer[func(session.Key, time.Time)]
}

// NewEngine creates an Engine.
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg.withDefaults()}
	e.stages.Store(&stageSet{m: map[session.Key]stageState{}})
	return e
}

// stage returns the session's ladder state from the current snapshot.
func (e *Engine) stage(key session.Key) (stageState, bool) {
	st, ok := e.stages.Load().m[key]
	return st, ok
}

// setStage copies the snapshot with key at the given state.
func (e *Engine) setStage(key session.Key, st stageState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.setStageLocked(key, st)
}

func (e *Engine) setStageLocked(key session.Key, st stageState) {
	cur := e.stages.Load()
	next := make(map[session.Key]stageState, len(cur.m)+1)
	for k, v := range cur.m {
		next[k] = v
	}
	next[key] = st
	e.stages.Store(&stageSet{m: next})
}

// escalateChallenge promotes key from monitor to challenge. The caller's
// stage read was lock-free, so the current state is re-validated under the
// mutex: if a concurrent evaluation already challenged — or blocked — the
// session, that state wins and transitioned is false. Without this check a
// stale monitor read could overwrite a just-published block.
func (e *Engine) escalateChallenge(key session.Key, total int64) (st stageState, transitioned bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.stages.Load().m[key]; ok {
		return cur, false
	}
	st = stageState{stage: StageChallenge, enteredTotal: total}
	e.setStageLocked(key, st)
	return st, true
}

// demote removes key from the ladder (back to monitor).
func (e *Engine) demote(key session.Key) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.stages.Load()
	if _, ok := cur.m[key]; !ok {
		return
	}
	next := make(map[session.Key]stageState, len(cur.m))
	for k, v := range cur.m {
		if k != key {
			next[k] = v
		}
	}
	e.stages.Store(&stageSet{m: next})
}

// expireBlock drops key if its block has lapsed, counting the unblock
// exactly once even when readers race on the expiry. It sweeps every other
// expired block in the same copy, so draining a ladder whose blocks lapse
// together costs one map copy, not one per entry.
func (e *Engine) expireBlock(key session.Key) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.stages.Load()
	now := e.cfg.Clock.Now()
	st, ok := cur.m[key]
	if !ok || st.stage != StageBlock || now.Before(st.until) {
		return
	}
	next := make(map[session.Key]stageState, len(cur.m))
	removed := int64(0)
	for k, v := range cur.m {
		if v.stage == StageBlock && !now.Before(v.until) {
			removed++
			continue
		}
		next[k] = v
	}
	e.stages.Store(&stageSet{m: next})
	e.stats.unblocked.Add(removed)
}

// Thresholds returns the effective thresholds.
func (e *Engine) Thresholds() Thresholds { return e.cfg.Thresholds }

// HumanBandwidthBonus returns the bandwidth multiplier for verified humans.
func (e *Engine) HumanBandwidthBonus() float64 { return e.cfg.HumanBandwidthBonus }

// Evaluate walks the session one step along the escalation ladder given its
// current snapshot and the detection chain's verdict. The common path (no
// transition) is lock-free.
func (e *Engine) Evaluate(snap session.Snapshot, verdict detect.Verdict) Decision {
	e.stats.evaluations.Add(1)
	now := e.cfg.Clock.Now()
	key := snap.Key

	st, ok := e.stage(key)
	if ok && st.stage == StageBlock {
		if now.Before(st.until) {
			e.stats.blocked.Add(1)
			return Decision{Action: Block, Stage: StageBlock, Reason: "session is blocked"}
		}
		e.expireBlock(key)
		st, ok = e.stage(key)
	}

	if verdict.Class != detect.ClassRobot {
		stage := StageMonitor
		if ok {
			stage = st.stage
		}
		if ok && st.stage == StageChallenge && verdict.Class == detect.ClassHuman && verdict.Confidence == detect.Definite {
			// The challenge worked: direct human evidence (CAPTCHA pass,
			// input events) de-escalates the session.
			e.demote(key)
			e.stats.deescalated.Add(1)
			stage = StageMonitor
		}
		e.stats.allowed.Add(1)
		return Decision{Action: Allow, Stage: stage, Reason: "session not classified as robot"}
	}

	// Robot verdict: monitor → challenge on the first one. The transition
	// re-validates under the writer mutex; a concurrent block wins.
	if !ok || st.stage != StageChallenge {
		st2, transitioned := e.escalateChallenge(key, int64(snap.Counts.Total))
		if transitioned {
			e.stats.challenged.Add(1)
			return Decision{Action: Challenge, Stage: StageChallenge, Reason: "robot verdict (" + verdict.Reason + "): challenge issued"}
		}
		if st2.stage == StageBlock {
			e.stats.blocked.Add(1)
			return Decision{Action: Block, Stage: StageBlock, Reason: "session is blocked"}
		}
		st = st2 // already challenged by a concurrent evaluation
	}

	// Challenged and still behaving like a robot: behavioural thresholds and
	// the definite-evidence grace decide between block, throttle and allow.
	th := e.cfg.Thresholds
	dur := snap.Duration().Seconds()
	if dur < 1 {
		dur = 1
	}
	c := snap.Counts

	if th.MaxCGIRate > 0 {
		if rate := float64(c.CGI) / dur; rate > th.MaxCGIRate {
			e.block(key, now)
			return Decision{Action: Block, Stage: StageBlock, Reason: fmt.Sprintf("challenged robot CGI rate %.2f/s exceeds %.2f/s", rate, th.MaxCGIRate)}
		}
	}
	if th.MaxErrorShare > 0 && int64(c.Total) >= th.MinRequestsForShare {
		errShare := float64(c.Status4xx+c.Status5xx) / float64(c.Total)
		if errShare > th.MaxErrorShare {
			e.block(key, now)
			return Decision{Action: Block, Stage: StageBlock, Reason: fmt.Sprintf("challenged robot error share %.0f%% exceeds %.0f%%", errShare*100, th.MaxErrorShare*100)}
		}
	}
	if verdict.Confidence == detect.Definite && int64(c.Total)-st.enteredTotal >= e.cfg.ChallengeGraceRequests {
		e.block(key, now)
		return Decision{Action: Block, Stage: StageBlock, Reason: fmt.Sprintf("definite robot ignored the challenge for %d requests", int64(c.Total)-st.enteredTotal)}
	}
	if th.MaxRequestRate > 0 {
		if rate := float64(c.Total) / dur; rate > th.MaxRequestRate {
			e.stats.throttled.Add(1)
			return Decision{Action: Throttle, Stage: StageChallenge, Reason: fmt.Sprintf("challenged robot request rate %.2f/s exceeds %.2f/s", rate, th.MaxRequestRate)}
		}
	}
	e.stats.allowed.Add(1)
	return Decision{Action: Allow, Stage: StageChallenge, Reason: "challenged robot within behavioural thresholds"}
}

// block promotes key to the block stage and reports the locally decided
// block to the fleet hook.
func (e *Engine) block(key session.Key, now time.Time) {
	until := now.Add(e.cfg.BlockDuration)
	e.setStage(key, stageState{stage: StageBlock, until: until})
	e.stats.blocked.Add(1)
	if fn := e.onBlock.Load(); fn != nil {
		(*fn)(key, until)
	}
}

// BlockNow explicitly blocks a session (e.g. after an operator decision).
func (e *Engine) BlockNow(key session.Key) {
	e.block(key, e.cfg.Clock.Now())
}

// SetOnBlock installs (or clears, with nil) the fleet replication hook: it
// fires on every locally decided block — Evaluate escalations and BlockNow —
// with the block's expiry, and never on blocks applied via BlockUntil, so
// replicated blocks cannot echo back into the mesh.
func (e *Engine) SetOnBlock(fn func(session.Key, time.Time)) {
	if fn == nil {
		e.onBlock.Store(nil)
		return
	}
	e.onBlock.Store(&fn)
}

// BlockUntil merges a replicated block-list entry: key is blocked until the
// given time unless it already carries a block extending at least that far.
// The merge is idempotent and commutative (later expiry wins), so replayed
// or reordered replication deliveries converge. It reports whether the
// ladder changed; applied entries count as remote blocks, not decisions.
func (e *Engine) BlockUntil(key session.Key, until time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.stages.Load().m[key]; ok && cur.stage == StageBlock && !cur.until.Before(until) {
		return false
	}
	e.setStageLocked(key, stageState{stage: StageBlock, until: until})
	e.stats.remoteBlocks.Add(1)
	return true
}

// BlockEntry is one blocked session with its expiry, for replication and
// drain snapshots.
type BlockEntry struct {
	Key   session.Key
	Until time.Time
}

// BlockedSessions returns the sessions currently in the block stage with
// their expiries (lock-free snapshot read).
func (e *Engine) BlockedSessions() []BlockEntry {
	m := e.stages.Load().m
	out := make([]BlockEntry, 0, len(m))
	for k, st := range m {
		if st.stage == StageBlock {
			out = append(out, BlockEntry{Key: k, Until: st.until})
		}
	}
	return out
}

// IsBlocked reports whether a session is currently blocked. The check is
// lock-free unless it observes an expired block to clean up.
func (e *Engine) IsBlocked(key session.Key) bool {
	st, ok := e.stage(key)
	if !ok || st.stage != StageBlock {
		return false
	}
	if e.cfg.Clock.Now().Before(st.until) {
		return true
	}
	e.expireBlock(key)
	return false
}

// StageOf returns the session's current escalation stage.
func (e *Engine) StageOf(key session.Key) Stage {
	st, ok := e.stage(key)
	if !ok {
		return StageMonitor
	}
	return st.stage
}

// BlockedCount returns the number of sessions currently in the block stage
// (including blocks whose expiry has passed but has not been observed yet).
func (e *Engine) BlockedCount() int {
	n := 0
	for _, st := range e.stages.Load().m {
		if st.stage == StageBlock {
			n++
		}
	}
	return n
}

// ChallengedCount returns the number of sessions currently in the challenge
// stage.
func (e *Engine) ChallengedCount() int {
	n := 0
	for _, st := range e.stages.Load().m {
		if st.stage == StageChallenge {
			n++
		}
	}
	return n
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Evaluations:  e.stats.evaluations.Load(),
		Allowed:      e.stats.allowed.Load(),
		Challenged:   e.stats.challenged.Load(),
		Throttled:    e.stats.throttled.Load(),
		Blocked:      e.stats.blocked.Load(),
		RemoteBlocks: e.stats.remoteBlocks.Load(),
		Unblocked:    e.stats.unblocked.Load(),
		DeEscalated:  e.stats.deescalated.Load(),
	}
}

// RegisterMetrics exposes the engine's decision counters and ladder gauges
// through a telemetry registry. The collectors read the existing atomic
// stats at scrape time, so enforcement pays nothing for being observable;
// node labels the samples in fleet registries ("" for none).
func (e *Engine) RegisterMetrics(reg *telemetry.Registry, node string) {
	nl := ""
	if node != "" {
		nl = telemetry.Label("node", node)
	}
	const decisions = "botdetect_policy_decisions_total"
	decHelp := "Policy evaluations by resulting action."
	reg.CounterFunc(decisions, telemetry.Join(telemetry.Label("action", "allow"), nl), decHelp,
		func() float64 { return float64(e.stats.allowed.Load()) })
	reg.CounterFunc(decisions, telemetry.Join(telemetry.Label("action", "challenge"), nl), decHelp,
		func() float64 { return float64(e.stats.challenged.Load()) })
	reg.CounterFunc(decisions, telemetry.Join(telemetry.Label("action", "throttle"), nl), decHelp,
		func() float64 { return float64(e.stats.throttled.Load()) })
	reg.CounterFunc(decisions, telemetry.Join(telemetry.Label("action", "block"), nl), decHelp,
		func() float64 { return float64(e.stats.blocked.Load()) })

	const transitions = "botdetect_policy_transitions_total"
	trHelp := "Escalation-ladder transitions by kind."
	reg.CounterFunc(transitions, telemetry.Join(telemetry.Label("event", "unblocked"), nl), trHelp,
		func() float64 { return float64(e.stats.unblocked.Load()) })
	reg.CounterFunc(transitions, telemetry.Join(telemetry.Label("event", "remote_block"), nl), trHelp,
		func() float64 { return float64(e.stats.remoteBlocks.Load()) })
	reg.CounterFunc(transitions, telemetry.Join(telemetry.Label("event", "deescalated"), nl), trHelp,
		func() float64 { return float64(e.stats.deescalated.Load()) })

	chLabels := telemetry.Join(telemetry.Label("stage", "challenge"), nl)
	blLabels := telemetry.Join(telemetry.Label("stage", "block"), nl)
	reg.GaugeFunc("botdetect_policy_sessions", "Sessions on the escalation ladder by stage.",
		func(emit func(labels string, v float64)) {
			emit(chLabels, float64(e.ChallengedCount()))
			emit(blLabels, float64(e.BlockedCount()))
		})
}

// Limiter is a token-bucket rate limiter used by the proxy to throttle
// robot-classified sessions. It is safe for concurrent use.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	clk    clock.Clock
}

// NewLimiter creates a token bucket admitting rate requests/second with the
// given burst. Non-positive values are clamped to small positives.
func NewLimiter(rate, burst float64, clk clock.Clock) *Limiter {
	if rate <= 0 {
		rate = 0.1
	}
	if burst <= 0 {
		burst = 1
	}
	if clk == nil {
		clk = clock.System
	}
	return &Limiter{rate: rate, burst: burst, tokens: burst, last: clk.Now(), clk: clk}
}

// Allow consumes one token if available and reports whether the request may
// proceed.
func (l *Limiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clk.Now()
	elapsed := now.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.tokens += elapsed * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
	}
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// Tokens returns the current token count (for tests and monitoring).
func (l *Limiter) Tokens() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tokens
}
