package policy

import (
	"strings"
	"sync"
	"testing"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/detect"
	"botdetect/internal/session"
)

func newTestEngine(cfg Config) (*Engine, *clock.Virtual) {
	vc := clock.NewVirtual(time.Time{})
	cfg.Clock = vc
	return NewEngine(cfg), vc
}

func robotVerdict() detect.Verdict {
	return detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "test"}
}

func probableRobotVerdict() detect.Verdict {
	return detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Probable, Reason: "test"}
}

func humanVerdict() detect.Verdict {
	return detect.Verdict{Class: detect.ClassHuman, Confidence: detect.Definite, Reason: "test"}
}

func snapshotWith(key session.Key, counts session.Counts, dur time.Duration, start time.Time) session.Snapshot {
	return session.Snapshot{Key: key, FirstSeen: start, LastSeen: start.Add(dur), Counts: counts}
}

// challenge primes the ladder: the first robot verdict moves the session
// from monitor to challenge and must return the Challenge action.
func challenge(t *testing.T, e *Engine, snap session.Snapshot, v detect.Verdict) {
	t.Helper()
	d := e.Evaluate(snap, v)
	if d.Action != Challenge || d.Stage != StageChallenge {
		t.Fatalf("first robot verdict did not challenge: %+v", d)
	}
}

func TestHumanAlwaysAllowed(t *testing.T) {
	e, vc := newTestEngine(Config{})
	key := session.Key{IP: "1.1.1.1", UserAgent: "Firefox"}
	snap := snapshotWith(key, session.Counts{Total: 1000, CGI: 900, Status4xx: 500}, time.Minute, vc.Now())
	d := e.Evaluate(snap, humanVerdict())
	if d.Action != Allow {
		t.Fatalf("decision = %+v", d)
	}
	if e.Stats().Allowed != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
}

func TestRobotChallengedOnceThenWatched(t *testing.T) {
	e, vc := newTestEngine(Config{})
	key := session.Key{IP: "2.2.2.2", UserAgent: "Bot"}
	snap := snapshotWith(key, session.Counts{Total: 30, CGI: 1, Status2xx: 30}, 10*time.Minute, vc.Now())

	challenge(t, e, snap, probableRobotVerdict())
	if e.Stats().Challenged != 1 || e.ChallengedCount() != 1 {
		t.Fatalf("stats = %+v challenged=%d", e.Stats(), e.ChallengedCount())
	}
	// A well-behaved challenged robot is allowed through, not re-challenged.
	d := e.Evaluate(snap, probableRobotVerdict())
	if d.Action != Allow || d.Stage != StageChallenge {
		t.Fatalf("second evaluation = %+v", d)
	}
	if e.Stats().Challenged != 1 {
		t.Fatalf("challenged again: %+v", e.Stats())
	}
}

func TestChallengePassedDeEscalates(t *testing.T) {
	e, vc := newTestEngine(Config{})
	key := session.Key{IP: "2.2.2.3", UserAgent: "MaybeHuman"}
	snap := snapshotWith(key, session.Counts{Total: 30, Status2xx: 30}, 10*time.Minute, vc.Now())

	challenge(t, e, snap, probableRobotVerdict())
	// Direct human evidence (e.g. the CAPTCHA the challenge pointed at)
	// drops the session back to monitor.
	d := e.Evaluate(snap, humanVerdict())
	if d.Action != Allow {
		t.Fatalf("decision = %+v", d)
	}
	if e.StageOf(key) != StageMonitor || e.ChallengedCount() != 0 {
		t.Fatalf("session not de-escalated: stage=%v", e.StageOf(key))
	}
	if e.Stats().DeEscalated != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
	// The next robot verdict starts a fresh challenge.
	challenge(t, e, snap, probableRobotVerdict())
}

func TestRobotCGIRateBlocks(t *testing.T) {
	e, vc := newTestEngine(Config{})
	key := session.Key{IP: "3.3.3.3", UserAgent: "ClickBot"}
	// 300 CGI requests in 60 seconds = 5/s, above the 0.2/s default.
	snap := snapshotWith(key, session.Counts{Total: 320, CGI: 300, Status2xx: 320}, time.Minute, vc.Now())
	challenge(t, e, snap, robotVerdict())
	d := e.Evaluate(snap, robotVerdict())
	if d.Action != Block || !strings.Contains(d.Reason, "CGI rate") {
		t.Fatalf("decision = %+v", d)
	}
	if !e.IsBlocked(key) {
		t.Fatal("session should be blocked")
	}
	// A later evaluation stays blocked even if the verdict were to change.
	d = e.Evaluate(snap, humanVerdict())
	if d.Action != Block {
		t.Fatalf("blocked session later allowed: %+v", d)
	}
}

func TestRobotErrorShareBlocks(t *testing.T) {
	e, vc := newTestEngine(Config{})
	key := session.Key{IP: "4.4.4.4", UserAgent: "VulnScanner"}
	snap := snapshotWith(key, session.Counts{Total: 50, Status4xx: 30, Status2xx: 20}, 10*time.Minute, vc.Now())
	challenge(t, e, snap, robotVerdict())
	d := e.Evaluate(snap, robotVerdict())
	if d.Action != Block || !strings.Contains(d.Reason, "error share") {
		t.Fatalf("decision = %+v", d)
	}
}

func TestErrorShareNeedsMinimumRequests(t *testing.T) {
	e, vc := newTestEngine(Config{})
	key := session.Key{IP: "5.5.5.5", UserAgent: "Bot"}
	// 100% errors but only 5 requests: below MinRequestsForShare.
	snap := snapshotWith(key, session.Counts{Total: 5, Status4xx: 5}, 10*time.Minute, vc.Now())
	challenge(t, e, snap, robotVerdict())
	d := e.Evaluate(snap, robotVerdict())
	if d.Action == Block {
		t.Fatalf("blocked on too few requests: %+v", d)
	}
}

func TestRobotRequestRateThrottles(t *testing.T) {
	e, vc := newTestEngine(Config{})
	key := session.Key{IP: "6.6.6.6", UserAgent: "Crawler"}
	// 600 requests in 60 seconds = 10/s, above 2/s: throttle (no CGI, no errors).
	snap := snapshotWith(key, session.Counts{Total: 600, Status2xx: 600}, time.Minute, vc.Now())
	challenge(t, e, snap, probableRobotVerdict())
	d := e.Evaluate(snap, probableRobotVerdict())
	if d.Action != Throttle {
		t.Fatalf("decision = %+v", d)
	}
	if e.Stats().Throttled != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
}

func TestDefiniteRobotIgnoringChallengeBlocks(t *testing.T) {
	e, vc := newTestEngine(Config{ChallengeGraceRequests: 10})
	key := session.Key{IP: "6.6.6.7", UserAgent: "Harvester"}
	// Slow enough to stay under every rate threshold.
	early := snapshotWith(key, session.Counts{Total: 30, Status2xx: 30}, time.Hour, vc.Now())
	challenge(t, e, early, robotVerdict())

	// Within the grace window: still allowed.
	within := snapshotWith(key, session.Counts{Total: 35, Status2xx: 35}, time.Hour, vc.Now())
	if d := e.Evaluate(within, robotVerdict()); d.Action != Allow {
		t.Fatalf("within grace = %+v", d)
	}
	// Past the grace window with definite evidence: blocked.
	past := snapshotWith(key, session.Counts{Total: 41, Status2xx: 41}, time.Hour, vc.Now())
	d := e.Evaluate(past, robotVerdict())
	if d.Action != Block || !strings.Contains(d.Reason, "ignored the challenge") {
		t.Fatalf("past grace = %+v", d)
	}
	// A merely probable robot is never grace-blocked.
	e2, vc2 := newTestEngine(Config{ChallengeGraceRequests: 10})
	challenge(t, e2, snapshotWith(key, session.Counts{Total: 30, Status2xx: 30}, time.Hour, vc2.Now()), probableRobotVerdict())
	if d := e2.Evaluate(snapshotWith(key, session.Counts{Total: 100, Status2xx: 100}, time.Hour, vc2.Now()), probableRobotVerdict()); d.Action != Allow {
		t.Fatalf("probable robot past grace = %+v", d)
	}
}

func TestBlockExpiry(t *testing.T) {
	e, vc := newTestEngine(Config{BlockDuration: 30 * time.Minute})
	key := session.Key{IP: "7.7.7.7", UserAgent: "Bot"}
	e.BlockNow(key)
	if !e.IsBlocked(key) {
		t.Fatal("BlockNow did not block")
	}
	vc.Advance(31 * time.Minute)
	if e.IsBlocked(key) {
		t.Fatal("block did not expire")
	}
	if e.Stats().Unblocked != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
}

func TestBlockExpiryViaEvaluate(t *testing.T) {
	e, vc := newTestEngine(Config{BlockDuration: 10 * time.Minute})
	key := session.Key{IP: "8.8.8.8", UserAgent: "Bot"}
	e.BlockNow(key)
	vc.Advance(11 * time.Minute)
	snap := snapshotWith(key, session.Counts{Total: 30, Status2xx: 30}, 10*time.Minute, vc.Now())
	// After the block lapses, a still-robot verdict re-enters the ladder at
	// the challenge stage rather than staying blocked.
	d := e.Evaluate(snap, robotVerdict())
	if d.Action != Challenge {
		t.Fatalf("decision after expiry = %+v", d)
	}
	if e.BlockedCount() != 0 {
		t.Fatalf("BlockedCount = %d", e.BlockedCount())
	}
	// A human verdict after expiry simply allows.
	e2, vc2 := newTestEngine(Config{BlockDuration: 10 * time.Minute})
	e2.BlockNow(key)
	vc2.Advance(11 * time.Minute)
	if d := e2.Evaluate(snap, humanVerdict()); d.Action != Allow {
		t.Fatalf("human after expiry = %+v", d)
	}
}

func TestDefaultsApplied(t *testing.T) {
	e, _ := newTestEngine(Config{})
	th := e.Thresholds()
	if th != DefaultThresholds() {
		t.Fatalf("thresholds = %+v", th)
	}
	if e.HumanBandwidthBonus() != 2.0 {
		t.Fatalf("bonus = %f", e.HumanBandwidthBonus())
	}
	if e.cfg.ChallengeGraceRequests != 25 {
		t.Fatalf("grace = %d", e.cfg.ChallengeGraceRequests)
	}
}

func TestActionAndStageStrings(t *testing.T) {
	if Allow.String() != "allow" || Challenge.String() != "challenge" || Throttle.String() != "throttle" ||
		Block.String() != "block" || Action(9).String() != "allow" {
		t.Fatal("Action names wrong")
	}
	if StageMonitor.String() != "monitor" || StageChallenge.String() != "challenge" || StageBlock.String() != "block" {
		t.Fatal("Stage names wrong")
	}
}

func TestLimiterBasics(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	l := NewLimiter(1, 3, vc) // 1 req/s, burst 3
	allowed := 0
	for i := 0; i < 5; i++ {
		if l.Allow() {
			allowed++
		}
	}
	if allowed != 3 {
		t.Fatalf("burst allowed %d, want 3", allowed)
	}
	vc.Advance(2 * time.Second)
	allowed = 0
	for i := 0; i < 5; i++ {
		if l.Allow() {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("after refill allowed %d, want 2", allowed)
	}
}

func TestLimiterTokenCapAndDefaults(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	l := NewLimiter(10, 5, vc)
	vc.Advance(time.Hour)
	l.Allow()
	if l.Tokens() > 5 {
		t.Fatalf("tokens exceeded burst: %f", l.Tokens())
	}
	d := NewLimiter(-1, -1, nil)
	if !d.Allow() {
		t.Fatal("defaulted limiter should allow the first request")
	}
}

func TestZeroThresholdsDisableRules(t *testing.T) {
	e, vc := newTestEngine(Config{Thresholds: Thresholds{MaxRequestRate: 0, MaxCGIRate: 0, MaxErrorShare: 0, MinRequestsForShare: 1}})
	// All-zero would be replaced by defaults, so set one harmless field. The
	// per-rule zero values disable individual rules.
	key := session.Key{IP: "9.9.9.9", UserAgent: "Bot"}
	snap := snapshotWith(key, session.Counts{Total: 100000, CGI: 100000, Status4xx: 100000}, time.Second, vc.Now())
	challenge(t, e, snap, probableRobotVerdict())
	d := e.Evaluate(snap, probableRobotVerdict())
	if d.Action != Allow {
		t.Fatalf("disabled rules still fired: %+v", d)
	}
}

func TestConcurrentEnforcement(t *testing.T) {
	// Readers (Evaluate/IsBlocked/BlockedCount) race against transition and
	// expiry writers on the copy-on-write snapshot; run under -race this is
	// the data-race proof for the lock-free read path.
	eng, vc := newTestEngine(Config{BlockDuration: time.Minute})
	start := vc.Now()
	keys := make([]session.Key, 16)
	for i := range keys {
		keys[i] = session.Key{IP: "10.9.0." + string(rune('1'+i%9)), UserAgent: "UA" + string(rune('a'+i))}
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keys[(seed+i)%len(keys)]
				switch i % 4 {
				case 0:
					snap := snapshotWith(k, session.Counts{Total: 5}, 10*time.Second, start)
					eng.Evaluate(snap, robotVerdict())
				case 1:
					eng.BlockNow(k)
				case 2:
					eng.IsBlocked(k)
				default:
					eng.BlockedCount()
				}
			}
		}(w)
	}
	wg.Wait()

	st := eng.Stats()
	if st.Blocked == 0 {
		t.Fatalf("no blocks recorded: %+v", st)
	}
	// Every key was explicitly blocked and the clock never advanced, so the
	// final ladder must still hold all of them in the block stage.
	if got := eng.BlockedCount(); got != len(keys) {
		t.Fatalf("BlockedCount = %d, want %d", got, len(keys))
	}
}
