// Package logfmt defines the canonical HTTP request record used throughout
// the repository and its on-disk representation, an extended Combined Log
// Format (CLF). The same Entry type flows through the live proxy, the
// CoDeeN-scale simulator, the session tracker, and the offline feature
// extractor, so results from the online and offline paths are directly
// comparable.
//
// The serialized format is the Apache "combined" log with the client
// User-Agent and Referer, which is what the paper's offline analysis (and the
// Tan & Kumar baseline it cites) consumes.
package logfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Entry is one HTTP request/response observation.
type Entry struct {
	// Time is when the request was received.
	Time time.Time
	// ClientIP is the remote address without port.
	ClientIP string
	// Method is the HTTP method (GET, HEAD, POST, ...).
	Method string
	// Path is the request path including any query string.
	Path string
	// Protocol is the HTTP version string, e.g. "HTTP/1.1".
	Protocol string
	// Status is the HTTP response status code.
	Status int
	// Bytes is the number of response body bytes sent.
	Bytes int64
	// Referer is the Referer request header ("" if absent).
	Referer string
	// UserAgent is the User-Agent request header ("" if absent).
	UserAgent string
	// ContentType is the response Content-Type ("" if unknown). It is not
	// part of classic CLF; it is carried in the extension position.
	ContentType string
}

// CLF timestamp layout: [10/Oct/2000:13:55:36 -0700]
const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

// String renders the entry as one extended combined-log line.
func (e Entry) String() string { return string(e.AppendLine(nil)) }

// AppendLine appends the entry's extended combined-log line (no trailing
// newline) to dst and returns the extended slice. The output is byte-for-byte
// what String returns; with a reused dst the encoder allocates nothing for
// the plain-ASCII fields real access logs consist of, which is what keeps
// Writer allocation-free per entry.
func (e Entry) AppendLine(dst []byte) []byte {
	dst = append(dst, emptyDash(e.ClientIP)...)
	dst = append(dst, " - - ["...)
	dst = e.Time.AppendFormat(dst, clfTimeLayout)
	dst = append(dst, "] \""...)
	dst = appendQuotedBody(dst, e.Method)
	dst = append(dst, ' ')
	dst = appendQuotedBody(dst, e.Path)
	dst = append(dst, ' ')
	dst = appendQuotedBody(dst, protocolOrDefault(e.Protocol))
	dst = append(dst, "\" "...)
	dst = strconv.AppendInt(dst, int64(e.Status), 10)
	dst = append(dst, ' ')
	if e.Bytes > 0 || e.Status != 0 {
		dst = strconv.AppendInt(dst, e.Bytes, 10)
	} else {
		dst = append(dst, '-')
	}
	dst = append(dst, ' ')
	dst = appendQuoted(dst, emptyDash(e.Referer))
	dst = append(dst, ' ')
	dst = appendQuoted(dst, emptyDash(e.UserAgent))
	dst = append(dst, ' ')
	return appendQuoted(dst, emptyDash(e.ContentType))
}

// quotePlain reports whether %q renders s as just "s": printable ASCII with
// no quote or backslash. Log fields are almost always in this set.
func quotePlain(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// appendQuoted appends s %q-quoted.
func appendQuoted(dst []byte, s string) []byte {
	if quotePlain(s) {
		dst = append(dst, '"')
		dst = append(dst, s...)
		return append(dst, '"')
	}
	return strconv.AppendQuote(dst, s)
}

// appendQuotedBody appends s escaped as %q would inside surrounding quotes
// the caller already emitted. Escaping is per-rune, so quoting the request
// line piecewise around its literal spaces matches quoting it whole.
func appendQuotedBody(dst []byte, s string) []byte {
	if quotePlain(s) {
		return append(dst, s...)
	}
	q := strconv.Quote(s)
	return append(dst, q[1:len(q)-1]...)
}

func emptyDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func protocolOrDefault(p string) string {
	if p == "" {
		return "HTTP/1.1"
	}
	return p
}

// ParseLine parses one extended combined-log line produced by Entry.String.
// It tolerates the plain combined format (without the trailing content-type
// field).
func ParseLine(line string) (Entry, error) {
	var e Entry
	line = strings.TrimSpace(line)
	if line == "" {
		return e, fmt.Errorf("logfmt: empty line")
	}
	// host ident user [time] "request" status bytes "referer" "agent" ["ctype"]
	rest := line
	var err error

	host, rest, err := nextToken(rest)
	if err != nil {
		return e, fmt.Errorf("logfmt: missing host: %w", err)
	}
	if host != "-" {
		e.ClientIP = host
	}
	if _, rest, err = nextToken(rest); err != nil { // ident
		return e, fmt.Errorf("logfmt: missing ident: %w", err)
	}
	if _, rest, err = nextToken(rest); err != nil { // authuser
		return e, fmt.Errorf("logfmt: missing user: %w", err)
	}

	// [timestamp]
	rest = strings.TrimLeft(rest, " ")
	if !strings.HasPrefix(rest, "[") {
		return e, fmt.Errorf("logfmt: missing timestamp bracket in %q", line)
	}
	end := strings.Index(rest, "]")
	if end < 0 {
		return e, fmt.Errorf("logfmt: unterminated timestamp in %q", line)
	}
	ts, err := time.Parse(clfTimeLayout, rest[1:end])
	if err != nil {
		return e, fmt.Errorf("logfmt: bad timestamp: %w", err)
	}
	e.Time = ts
	rest = rest[end+1:]

	// "METHOD path proto"
	req, rest, err := nextQuoted(rest)
	if err != nil {
		return e, fmt.Errorf("logfmt: bad request field: %w", err)
	}
	parts := strings.SplitN(req, " ", 3)
	if len(parts) >= 1 {
		e.Method = parts[0]
	}
	if len(parts) >= 2 {
		e.Path = parts[1]
	}
	if len(parts) >= 3 {
		e.Protocol = parts[2]
	}

	statusStr, rest, err := nextToken(rest)
	if err != nil {
		return e, fmt.Errorf("logfmt: missing status: %w", err)
	}
	status, err := strconv.Atoi(statusStr)
	if err != nil {
		return e, fmt.Errorf("logfmt: bad status %q: %w", statusStr, err)
	}
	e.Status = status

	bytesStr, rest, err := nextToken(rest)
	if err != nil {
		return e, fmt.Errorf("logfmt: missing bytes: %w", err)
	}
	if bytesStr != "-" {
		b, err := strconv.ParseInt(bytesStr, 10, 64)
		if err != nil {
			return e, fmt.Errorf("logfmt: bad bytes %q: %w", bytesStr, err)
		}
		e.Bytes = b
	}

	ref, rest, err := nextQuoted(rest)
	if err != nil {
		return e, fmt.Errorf("logfmt: bad referer: %w", err)
	}
	if ref != "-" {
		e.Referer = ref
	}
	ua, rest, err := nextQuoted(rest)
	if err != nil {
		return e, fmt.Errorf("logfmt: bad user-agent: %w", err)
	}
	if ua != "-" {
		e.UserAgent = ua
	}
	// Optional extension: content type.
	if ct, _, err := nextQuoted(rest); err == nil && ct != "-" {
		e.ContentType = ct
	}
	return e, nil
}

// nextToken returns the next space-delimited token and the remainder.
func nextToken(s string) (token, rest string, err error) {
	s = strings.TrimLeft(s, " ")
	if s == "" {
		return "", "", fmt.Errorf("unexpected end of line")
	}
	idx := strings.IndexByte(s, ' ')
	if idx < 0 {
		return s, "", nil
	}
	return s[:idx], s[idx+1:], nil
}

// nextQuoted returns the next double-quoted field (supporting \" escapes as
// produced by %q) and the remainder.
func nextQuoted(s string) (field, rest string, err error) {
	s = strings.TrimLeft(s, " ")
	if !strings.HasPrefix(s, "\"") {
		return "", "", fmt.Errorf("expected quoted field in %q", s)
	}
	// Use strconv to honour escapes produced by %q.
	val, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", fmt.Errorf("unterminated quoted field: %w", err)
	}
	unq, err := strconv.Unquote(val)
	if err != nil {
		return "", "", fmt.Errorf("bad quoting: %w", err)
	}
	return unq, s[len(val):], nil
}

// Writer serializes entries to an io.Writer, one line per entry. Lines are
// encoded through Entry.AppendLine into a reused buffer, so steady-state
// writes allocate nothing.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   int64
	err error
}

// NewWriter returns a Writer emitting extended combined-log lines to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one entry. Once an error has occurred, subsequent writes are
// no-ops returning that error.
func (lw *Writer) Write(e Entry) error {
	if lw.err != nil {
		return lw.err
	}
	lw.buf = e.AppendLine(lw.buf[:0])
	lw.buf = append(lw.buf, '\n')
	if _, err := lw.w.Write(lw.buf); err != nil {
		lw.err = err
		return err
	}
	lw.n++
	return nil
}

// Count returns the number of entries written successfully.
func (lw *Writer) Count() int64 { return lw.n }

// Flush flushes buffered output.
func (lw *Writer) Flush() error {
	if lw.err != nil {
		return lw.err
	}
	return lw.w.Flush()
}

// Reader parses entries from an io.Reader.
type Reader struct {
	s       *bufio.Scanner
	lineNum int
}

// NewReader returns a Reader over r. Lines up to 1 MiB are supported.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{s: s}
}

// Read returns the next entry, io.EOF at end of input, or a parse error
// annotated with the line number. Blank lines and lines starting with '#'
// are skipped.
func (lr *Reader) Read() (Entry, error) {
	for lr.s.Scan() {
		lr.lineNum++
		line := strings.TrimSpace(lr.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := ParseLine(line)
		if err != nil {
			return Entry{}, fmt.Errorf("line %d: %w", lr.lineNum, err)
		}
		return e, nil
	}
	if err := lr.s.Err(); err != nil {
		return Entry{}, err
	}
	return Entry{}, io.EOF
}

// ReadAll reads entries until EOF, returning the successfully parsed entries
// and the first error other than EOF (if any). Consumers that do not need
// the whole log in memory should use ReadEach, which streams in bounded
// memory regardless of log size.
func ReadAll(r io.Reader) ([]Entry, error) {
	var out []Entry
	err := ReadEach(r, func(e Entry) error {
		out = append(out, e)
		return nil
	})
	return out, err
}

// ReadEach streams entries from r to fn, one at a time, in bounded memory:
// nothing beyond the current line is retained. It stops at EOF (returning
// nil), on the first parse error, or on the first error returned by fn
// (which is returned verbatim, so callers can abort a replay early).
func ReadEach(r io.Reader, fn func(Entry) error) error {
	lr := NewReader(r)
	for {
		e, err := lr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}

// --- request classification helpers -----------------------------------------
//
// The detector and the feature extractor both need to know what kind of
// object a request refers to. Classification is based on the path extension
// and (when present) the response content type, mirroring how the CoDeeN
// implementation keyed on file names it had itself generated.

// PathOnly strips any query string from the path.
func (e Entry) PathOnly() string {
	if i := strings.IndexByte(e.Path, '?'); i >= 0 {
		return e.Path[:i]
	}
	return e.Path
}

// Query returns the query string without the '?', or "".
func (e Entry) Query() string {
	if i := strings.IndexByte(e.Path, '?'); i >= 0 {
		return e.Path[i+1:]
	}
	return ""
}

// Ext returns the lowercase path extension including the dot, or "".
func (e Entry) Ext() string {
	p := e.PathOnly()
	slash := strings.LastIndexByte(p, '/')
	dot := strings.LastIndexByte(p, '.')
	if dot < 0 || dot < slash {
		return ""
	}
	return strings.ToLower(p[dot:])
}

// IsHTML reports whether the request is for an HTML page (by content type or
// by extension / extension-less path).
func (e Entry) IsHTML() bool {
	ct := strings.ToLower(e.ContentType)
	if strings.HasPrefix(ct, "text/html") {
		return true
	}
	if ct != "" && !strings.HasPrefix(ct, "text/html") {
		return false
	}
	switch e.Ext() {
	case ".html", ".htm", ".shtml", ".php", ".asp", ".aspx", ".jsp":
		return true
	case "":
		// Directory-style URL.
		return strings.HasSuffix(e.PathOnly(), "/") || !strings.Contains(e.PathOnly(), ".")
	}
	return false
}

// IsImage reports whether the request is for an image object.
func (e Entry) IsImage() bool {
	if strings.HasPrefix(strings.ToLower(e.ContentType), "image/") {
		return true
	}
	switch e.Ext() {
	case ".gif", ".jpg", ".jpeg", ".png", ".bmp", ".ico", ".webp":
		return true
	}
	return false
}

// IsCSS reports whether the request is for a stylesheet.
func (e Entry) IsCSS() bool {
	if strings.HasPrefix(strings.ToLower(e.ContentType), "text/css") {
		return true
	}
	return e.Ext() == ".css"
}

// IsJS reports whether the request is for a JavaScript file.
func (e Entry) IsJS() bool {
	ct := strings.ToLower(e.ContentType)
	if strings.Contains(ct, "javascript") || strings.Contains(ct, "ecmascript") {
		return true
	}
	return e.Ext() == ".js"
}

// IsCGI reports whether the request targets a dynamic/CGI-style resource
// (cgi-bin paths, script extensions, or any request carrying a query string).
func (e Entry) IsCGI() bool {
	p := strings.ToLower(e.PathOnly())
	if strings.Contains(p, "/cgi-bin/") || strings.Contains(p, "/cgi/") {
		return true
	}
	switch e.Ext() {
	case ".cgi", ".pl", ".php", ".asp", ".aspx", ".jsp":
		return true
	}
	return e.Query() != ""
}

// IsFavicon reports whether the request is for favicon.ico.
func (e Entry) IsFavicon() bool {
	return strings.HasSuffix(strings.ToLower(e.PathOnly()), "/favicon.ico") ||
		strings.ToLower(e.PathOnly()) == "favicon.ico"
}

// IsEmbedded reports whether the object is one a browser fetches as a page
// dependency rather than a navigation target: images, CSS, JS, favicon,
// fonts, media.
func (e Entry) IsEmbedded() bool {
	if e.IsImage() || e.IsCSS() || e.IsJS() || e.IsFavicon() {
		return true
	}
	switch e.Ext() {
	case ".woff", ".woff2", ".ttf", ".swf", ".mp3", ".wav":
		return true
	}
	return false
}

// IsHead reports whether the request used the HEAD method.
func (e Entry) IsHead() bool { return strings.EqualFold(e.Method, "HEAD") }

// StatusClass returns the hundreds class of the status code (2 for 2xx, ...).
func (e Entry) StatusClass() int { return e.Status / 100 }
