//go:build !race

package logfmt

const raceEnabled = false
