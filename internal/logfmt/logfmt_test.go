package logfmt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleEntry() Entry {
	return Entry{
		Time:        time.Date(2006, 1, 6, 13, 55, 36, 0, time.UTC),
		ClientIP:    "10.1.2.3",
		Method:      "GET",
		Path:        "/index.html?q=1",
		Protocol:    "HTTP/1.1",
		Status:      200,
		Bytes:       5120,
		Referer:     "http://www.example.com/",
		UserAgent:   "Mozilla/5.0 (Windows; U) Firefox/1.5",
		ContentType: "text/html",
	}
}

func TestRoundTripSingle(t *testing.T) {
	e := sampleEntry()
	got, err := ParseLine(e.String())
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if !got.Time.Equal(e.Time) {
		t.Fatalf("time mismatch: %v vs %v", got.Time, e.Time)
	}
	got.Time = e.Time // normalise location for struct compare
	if got != e {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestRoundTripEmptyFields(t *testing.T) {
	e := Entry{
		Time:     time.Date(2006, 1, 13, 0, 0, 0, 0, time.UTC),
		ClientIP: "",
		Method:   "GET",
		Path:     "/",
		Status:   404,
	}
	got, err := ParseLine(e.String())
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if got.ClientIP != "" || got.Referer != "" || got.UserAgent != "" || got.ContentType != "" {
		t.Fatalf("empty fields not preserved: %+v", got)
	}
	if got.Status != 404 || got.Bytes != 0 {
		t.Fatalf("status/bytes wrong: %+v", got)
	}
}

func TestParsePlainCombinedFormat(t *testing.T) {
	line := `192.0.2.9 - - [06/Jan/2006:10:00:00 +0000] "GET /robots.txt HTTP/1.0" 200 68 "-" "Googlebot/2.1"`
	e, err := ParseLine(line)
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if e.ClientIP != "192.0.2.9" || e.Method != "GET" || e.Path != "/robots.txt" ||
		e.Protocol != "HTTP/1.0" || e.Status != 200 || e.Bytes != 68 ||
		e.Referer != "" || e.UserAgent != "Googlebot/2.1" || e.ContentType != "" {
		t.Fatalf("parsed entry wrong: %+v", e)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"only-a-host",
		`1.2.3.4 - - 06/Jan/2006 "GET / HTTP/1.1" 200 1 "-" "-"`,
		`1.2.3.4 - - [06/Jan/2006:10:00:00 +0000] GET / HTTP/1.1 200 1 "-" "-"`,
		`1.2.3.4 - - [06/Jan/2006:10:00:00 +0000] "GET / HTTP/1.1" notanum 1 "-" "-"`,
		`1.2.3.4 - - [06/Jan/2006:10:00:00 +0000] "GET / HTTP/1.1" 200 xx "-" "-"`,
		`1.2.3.4 - - [bad time] "GET / HTTP/1.1" 200 1 "-" "-"`,
		`1.2.3.4 - - [06/Jan/2006:10:00:00 +0000] "GET / HTTP/1.1" 200 1 "unterminated`,
	}
	for _, line := range cases {
		if _, err := ParseLine(line); err == nil {
			t.Fatalf("expected error for %q", line)
		}
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	entries := []Entry{
		sampleEntry(),
		{
			Time: time.Date(2006, 1, 7, 9, 30, 0, 0, time.UTC), ClientIP: "10.0.0.1",
			Method: "HEAD", Path: "/a.css", Protocol: "HTTP/1.1", Status: 304,
			UserAgent: "crawler \"quoted\" v1", ContentType: "text/css",
		},
		{
			Time: time.Date(2006, 1, 8, 9, 30, 0, 0, time.UTC), ClientIP: "10.0.0.2",
			Method: "POST", Path: "/cgi-bin/form.cgi?a=b&c=d", Protocol: "HTTP/1.0",
			Status: 500, Bytes: 12, Referer: "http://spam.example/?x=1",
		},
	}
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != int64(len(entries)) {
		t.Fatalf("Count = %d", w.Count())
	}

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		if !got[i].Time.Equal(entries[i].Time) {
			t.Fatalf("entry %d time mismatch", i)
		}
		got[i].Time = entries[i].Time
		if got[i] != entries[i] {
			t.Fatalf("entry %d mismatch:\n got %+v\nwant %+v", i, got[i], entries[i])
		}
	}
}

func TestReaderSkipsCommentsAndBlank(t *testing.T) {
	data := "# access log\n\n" + sampleEntry().String() + "\n"
	r := NewReader(strings.NewReader(data))
	if _, err := r.Read(); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderReportsLineNumber(t *testing.T) {
	data := sampleEntry().String() + "\nthis is garbage line\n"
	r := NewReader(strings.NewReader(data))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first Read: %v", err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("expected line-2 error, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ipA, ipB uint8, pathSeed uint16, status uint16, nbytes uint32, hasRef, hasUA bool) bool {
		e := Entry{
			Time:     time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC).Add(time.Duration(pathSeed) * time.Second),
			ClientIP: "10.0." + itoa(int(ipA)) + "." + itoa(int(ipB)),
			Method:   "GET",
			Path:     "/page" + itoa(int(pathSeed%500)) + ".html",
			Protocol: "HTTP/1.1",
			Status:   200 + int(status%400),
			Bytes:    int64(nbytes % 1000000),
		}
		if hasRef {
			e.Referer = "http://site.example/p" + itoa(int(pathSeed%100))
		}
		if hasUA {
			e.UserAgent = "Agent With Spaces/" + itoa(int(ipA))
		}
		got, err := ParseLine(e.String())
		if err != nil {
			return false
		}
		if !got.Time.Equal(e.Time) {
			return false
		}
		got.Time = e.Time
		return got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestClassificationHelpers(t *testing.T) {
	cases := []struct {
		name  string
		e     Entry
		html  bool
		img   bool
		css   bool
		js    bool
		cgi   bool
		fav   bool
		embed bool
	}{
		{"html by ext", Entry{Path: "/index.html"}, true, false, false, false, false, false, false},
		{"html by ctype", Entry{Path: "/x", ContentType: "text/html; charset=utf-8"}, true, false, false, false, false, false, false},
		{"directory", Entry{Path: "/dir/"}, true, false, false, false, false, false, false},
		{"extensionless", Entry{Path: "/about"}, true, false, false, false, false, false, false},
		{"css", Entry{Path: "/2031464296.css"}, false, false, true, false, false, false, true},
		{"css ctype", Entry{Path: "/style", ContentType: "text/css"}, false, false, true, false, false, false, true},
		{"js", Entry{Path: "/index_0729395150.js"}, false, false, false, true, false, false, true},
		{"js ctype", Entry{Path: "/x", ContentType: "application/javascript"}, false, false, false, true, false, false, true},
		{"jpg", Entry{Path: "/0729395160.jpg"}, false, true, false, false, false, false, true},
		{"image ctype", Entry{Path: "/pic", ContentType: "image/png"}, false, true, false, false, false, false, true},
		{"favicon", Entry{Path: "/favicon.ico"}, false, true, false, false, false, true, true},
		{"cgi-bin", Entry{Path: "/cgi-bin/search.cgi"}, false, false, false, false, true, false, false},
		{"php query", Entry{Path: "/page.php?id=2"}, true, false, false, false, true, false, false},
		{"query only", Entry{Path: "/search?q=x"}, true, false, false, false, true, false, false},
		{"font", Entry{Path: "/font.woff"}, false, false, false, false, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.e.IsHTML(); got != tc.html {
				t.Errorf("IsHTML = %v", got)
			}
			if got := tc.e.IsImage(); got != tc.img {
				t.Errorf("IsImage = %v", got)
			}
			if got := tc.e.IsCSS(); got != tc.css {
				t.Errorf("IsCSS = %v", got)
			}
			if got := tc.e.IsJS(); got != tc.js {
				t.Errorf("IsJS = %v", got)
			}
			if got := tc.e.IsCGI(); got != tc.cgi {
				t.Errorf("IsCGI = %v", got)
			}
			if got := tc.e.IsFavicon(); got != tc.fav {
				t.Errorf("IsFavicon = %v", got)
			}
			if got := tc.e.IsEmbedded(); got != tc.embed {
				t.Errorf("IsEmbedded = %v", got)
			}
		})
	}
}

func TestPathQueryExt(t *testing.T) {
	e := Entry{Path: "/cgi-bin/a.cgi?x=1&y=2"}
	if e.PathOnly() != "/cgi-bin/a.cgi" {
		t.Fatalf("PathOnly = %q", e.PathOnly())
	}
	if e.Query() != "x=1&y=2" {
		t.Fatalf("Query = %q", e.Query())
	}
	if e.Ext() != ".cgi" {
		t.Fatalf("Ext = %q", e.Ext())
	}
	if (Entry{Path: "/dir.v2/file"}).Ext() != "" {
		t.Fatal("Ext should ignore dots in directories")
	}
	if (Entry{Path: "/plain"}).Query() != "" {
		t.Fatal("Query on plain path should be empty")
	}
}

func TestHeadAndStatusClass(t *testing.T) {
	if !(Entry{Method: "head"}).IsHead() || (Entry{Method: "GET"}).IsHead() {
		t.Fatal("IsHead incorrect")
	}
	if (Entry{Status: 301}).StatusClass() != 3 || (Entry{Status: 404}).StatusClass() != 4 || (Entry{Status: 200}).StatusClass() != 2 {
		t.Fatal("StatusClass incorrect")
	}
}

func TestAppendLineMatchesString(t *testing.T) {
	entries := []Entry{
		{
			Time: time.Date(2006, 1, 6, 12, 30, 15, 0, time.UTC), ClientIP: "10.0.0.1",
			Method: "GET", Path: "/a.html?x=1", Protocol: "HTTP/1.0", Status: 200,
			Bytes: 4096, Referer: "http://h/x.html", UserAgent: "Firefox/1.5",
			ContentType: "text/html",
		},
		{}, // all-zero entry: dashes everywhere
		{
			Time:     time.Date(2006, 1, 6, 0, 0, 0, 0, time.FixedZone("PST", -8*3600)),
			ClientIP: "192.168.1.1", Method: "POST", Path: `/weird "path"\with?q=ü`,
			Status: 404, Referer: "ref \"quoted\"", UserAgent: "агент\ttab",
			ContentType: "text/plain; charset=utf-8",
		},
	}
	var buf []byte
	for i, e := range entries {
		buf = e.AppendLine(buf[:0])
		if string(buf) != e.String() {
			t.Fatalf("entry %d: AppendLine = %q, String = %q", i, buf, e.String())
		}
	}
}

func TestAppendLineRoundTrips(t *testing.T) {
	e := Entry{
		Time: time.Date(2006, 1, 6, 12, 30, 15, 0, time.UTC), ClientIP: "10.0.0.7",
		Method: "GET", Path: "/p.html", Protocol: "HTTP/1.1", Status: 200,
		Bytes: 123, Referer: "http://h/", UserAgent: "Mozilla/5.0", ContentType: "text/html",
	}
	got, err := ParseLine(string(e.AppendLine(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(e.Time) {
		t.Fatalf("time = %v, want %v", got.Time, e.Time)
	}
	got.Time = e.Time
	if got != e {
		t.Fatalf("round trip = %+v, want %+v", got, e)
	}
}

func TestReadEachStreamsAndAborts(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	for i := 0; i < 5; i++ {
		if err := w.Write(Entry{
			Time: time.Date(2006, 1, 6, 0, 0, i, 0, time.UTC), ClientIP: "10.0.0.1",
			Method: "GET", Path: fmt.Sprintf("/p%d.html", i), Status: 200,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var n int
	if err := ReadEach(strings.NewReader(sb.String()), func(e Entry) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("streamed %d entries, want 5", n)
	}

	// Early abort: the callback's error surfaces verbatim and stops the scan.
	sentinel := errors.New("stop here")
	n = 0
	err := ReadEach(strings.NewReader(sb.String()), func(e Entry) error {
		n++
		if n == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || n != 2 {
		t.Fatalf("abort: err=%v n=%d", err, n)
	}
}

func TestWriterSteadyStateAllocs(t *testing.T) {
	w := NewWriter(io.Discard)
	e := Entry{
		Time: time.Date(2006, 1, 6, 12, 0, 0, 0, time.UTC), ClientIP: "10.0.0.1",
		Method: "GET", Path: "/page1.html", Protocol: "HTTP/1.1", Status: 200,
		Bytes: 4096, Referer: "http://h/x.html", UserAgent: "Firefox/1.5",
		ContentType: "text/html",
	}
	w.Write(e) // warm the line buffer
	allocs := testing.AllocsPerRun(200, func() {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	})
	if raceEnabled {
		t.Skipf("paths exercised; skipping the ceiling (%.1f allocs/op measured) — allocation accounting differs under -race", allocs)
	}
	if allocs != 0 {
		t.Fatalf("Writer.Write allocated %.1f/op, want 0", allocs)
	}
}
