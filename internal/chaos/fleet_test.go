package chaos

import (
	"testing"
	"time"

	"botdetect/internal/fleet"
)

func TestLinksFates(t *testing.T) {
	l := NewLinks()
	msg := &fleet.Message{}
	if fate, _ := l.Intercept("a", "b", msg); fate != fleet.FateDeliver {
		t.Fatalf("transparent links delivered fate %v", fate)
	}
	l.PartitionOneWay("a", "b")
	if fate, _ := l.Intercept("a", "b", msg); fate != fleet.FateDrop {
		t.Fatalf("cut link fate %v, want drop", fate)
	}
	if fate, _ := l.Intercept("b", "a", msg); fate != fleet.FateDeliver {
		t.Fatalf("one-way cut swallowed the reverse direction")
	}
	l.Heal()
	l.DropNext(1)
	l.FailNext(1)
	l.DupNext(1)
	fates := []fleet.Fate{}
	for i := 0; i < 4; i++ {
		f, _ := l.Intercept("a", "b", msg)
		fates = append(fates, f)
	}
	want := []fleet.Fate{fleet.FateDrop, fleet.FateFail, fleet.FateDup, fleet.FateDeliver}
	for i := range want {
		if fates[i] != want[i] {
			t.Fatalf("fates = %v, want %v", fates, want)
		}
	}
	l.SetDelay(time.Millisecond)
	if _, d := l.Intercept("a", "b", msg); d != time.Millisecond {
		t.Fatalf("delay = %v", d)
	}
	st := l.Stats()
	if st.Cut != 1 || st.Dropped != 1 || st.Failed != 1 || st.Duped != 1 || st.Delivered < 2 {
		t.Fatalf("stats = %+v", st)
	}
	l.Partition([]string{"a"}, []string{"b", "c"})
	for _, pair := range [][2]string{{"a", "b"}, {"b", "a"}, {"a", "c"}, {"c", "a"}} {
		if fate, _ := l.Intercept(pair[0], pair[1], msg); fate != fleet.FateDrop {
			t.Fatalf("partition left %v connected", pair)
		}
	}
}

type fakeNode struct {
	name string
	down bool
}

func (f *fakeNode) Name() string { return f.name }
func (f *fakeNode) Crash()       { f.down = true }
func (f *fakeNode) Restart()     { f.down = false }
func (f *fakeNode) Down() bool   { return f.down }

func TestNodeFaults(t *testing.T) {
	nf := NewNodeFaults()
	a := &fakeNode{name: "a"}
	nf.Register(a)
	if nf.Crash("missing") {
		t.Fatal("crashed an unknown node")
	}
	if !nf.Crash("a") || !a.down {
		t.Fatal("crash did not land")
	}
	if nf.Crash("a") {
		t.Fatal("double crash")
	}
	if !nf.Restart("a") || a.down {
		t.Fatal("restart did not land")
	}
	nf.Crash("a")
	if n := nf.RestartAll(); n != 1 || a.down {
		t.Fatalf("RestartAll = %d", n)
	}
	if c, r := nf.Counts(); c != 2 || r != 2 {
		t.Fatalf("counts = %d,%d", c, r)
	}
}
