// Package chaos is the fault-injection harness for overload and
// origin-failure experiments: it wraps an origin handler with switchable
// latency spikes, 5xx bursts and connection resets, skews a clock under the
// detection engine, and inflates tracker pressure — the failure modes the
// overload-resilience machinery (admission control, circuit breaker,
// memory budget) exists to absorb. Every fault is driven by atomics so a
// bench or test can flip failure modes while requests are in flight.
package chaos

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/core"
	"botdetect/internal/logfmt"
)

// Origin wraps an origin handler with injectable faults. The zero value (via
// NewOrigin) is transparent: no latency, no failures.
type Origin struct {
	inner http.Handler

	latencyNanos   atomic.Int64 // added before every response
	failStatus     atomic.Int32 // status to fail with while failRemaining > 0
	failRemaining  atomic.Int64 // requests left in the current failure burst (-1 = until Heal)
	resetRemaining atomic.Int64 // requests left to kill mid-response

	served atomic.Int64
	failed atomic.Int64
	reset  atomic.Int64
}

// NewOrigin wraps inner with the fault switchboard.
func NewOrigin(inner http.Handler) *Origin {
	return &Origin{inner: inner}
}

// SetLatency adds d of synthetic origin latency to every subsequent request
// (0 clears the spike).
func (o *Origin) SetLatency(d time.Duration) { o.latencyNanos.Store(int64(d)) }

// FailWith makes the next n requests answer with the given status code
// instead of reaching the inner handler; n < 0 fails every request until
// Heal.
func (o *Origin) FailWith(status, n int) {
	o.failStatus.Store(int32(status))
	o.failRemaining.Store(int64(n))
}

// ResetNext makes the next n requests die mid-response: headers and a
// partial body go out, then the connection is aborted — the shape of an
// origin process being killed under load.
func (o *Origin) ResetNext(n int) { o.resetRemaining.Store(int64(n)) }

// Heal clears every injected fault.
func (o *Origin) Heal() {
	o.latencyNanos.Store(0)
	o.failRemaining.Store(0)
	o.resetRemaining.Store(0)
}

// Served, Failed and Reset return cumulative request counts by outcome.
func (o *Origin) Served() int64 { return o.served.Load() }
func (o *Origin) Failed() int64 { return o.failed.Load() }
func (o *Origin) Reset() int64  { return o.reset.Load() }

// takeBudget decrements a burst counter, reporting whether this request is
// inside the burst (-1 means an unbounded burst).
func takeBudget(c *atomic.Int64) bool {
	for {
		n := c.Load()
		if n == 0 {
			return false
		}
		if n < 0 {
			return true
		}
		if c.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// ServeHTTP implements http.Handler.
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := o.latencyNanos.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if takeBudget(&o.failRemaining) {
		o.failed.Add(1)
		status := int(o.failStatus.Load())
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, "chaos: injected origin failure", status)
		return
	}
	if takeBudget(&o.resetRemaining) {
		o.reset.Add(1)
		// Commit a healthy-looking response, leak a partial body, then abort
		// the connection: exactly what a mid-stream origin death looks like
		// to the proxy's transport.
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("<html><head><title>partial"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	o.served.Add(1)
	o.inner.ServeHTTP(w, r)
}

// Control returns an http.HandlerFunc that drives the switchboard remotely —
// the CI chaos smoke boots a chaos origin as a separate process and flips
// faults over HTTP. Parameters (query or form): latency_ms, fail_status,
// fail_count, reset_count; POST /...?heal=1 clears everything. Responses
// report the cumulative outcome counters.
func (o *Origin) Control() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if q.Get("heal") != "" {
			o.Heal()
		}
		if v := q.Get("latency_ms"); v != "" {
			ms, _ := strconv.Atoi(v)
			o.SetLatency(time.Duration(ms) * time.Millisecond)
		}
		if v := q.Get("fail_count"); v != "" {
			n, _ := strconv.Atoi(v)
			status, _ := strconv.Atoi(q.Get("fail_status"))
			if status == 0 {
				status = http.StatusServiceUnavailable
			}
			o.FailWith(status, n)
		}
		if v := q.Get("reset_count"); v != "" {
			n, _ := strconv.Atoi(v)
			o.ResetNext(n)
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "served=%d failed=%d reset=%d\n", o.Served(), o.Failed(), o.Reset())
	}
}

// Skewed is a clock.Clock whose offset can jump while components read it —
// the "NTP step under load" fault. Components sharing a Skewed clock see the
// skew simultaneously, which is how a real step lands on one host.
type Skewed struct {
	base        clock.Clock
	offsetNanos atomic.Int64
}

// NewSkewed wraps base (nil = wall clock) with an adjustable offset.
func NewSkewed(base clock.Clock) *Skewed {
	if base == nil {
		base = clock.System
	}
	return &Skewed{base: base}
}

// Now implements clock.Clock.
func (s *Skewed) Now() time.Time {
	return s.base.Now().Add(time.Duration(s.offsetNanos.Load()))
}

// Skew jumps the clock by d relative to the base clock (cumulative).
func (s *Skewed) Skew(d time.Duration) { s.offsetNanos.Add(int64(d)) }

// ClearSkew snaps back to the base clock.
func (s *Skewed) ClearSkew() { s.offsetNanos.Store(0) }

// FillSessions injects n synthetic anonymous sessions into the engine's
// tracker (distinct client IPs derived from prefix), the cheapest way to
// push occupancy to a target level without running a workload — tests and
// benches use it to force the Pressured/Saturated transitions.
func FillSessions(e *core.Engine, n int, prefix string) {
	now := e.Config().Clock.Now()
	for i := 0; i < n; i++ {
		e.ObserveRequestQuiet(logfmt.Entry{
			Time:      now,
			ClientIP:  prefix + strconv.Itoa(i),
			Method:    http.MethodGet,
			Path:      "/",
			Status:    http.StatusOK,
			UserAgent: "chaos-filler/1.0",
		})
	}
}
