// Fleet-level fault injection: message-layer faults (partitions, delays,
// drops, duplicates, failures) through a fleet.Intercept, and node-level
// faults (crash/restart) over a registry of crashable nodes. Both follow the
// package's switchboard convention — atomics and small locked tables that a
// chaos scenario flips while replication traffic is in flight.
package chaos

import (
	"sync"
	"sync/atomic"
	"time"

	"botdetect/internal/fleet"
)

// Links injects faults into a replication mesh. Install it with
// mesh.SetIntercept(links.Intercept); the zero value (via NewLinks) delivers
// everything untouched.
type Links struct {
	mu          sync.RWMutex
	partitioned map[[2]string]bool // directed from→to cut links

	delayNanos atomic.Int64 // imposed on every delivered message
	dropNext   atomic.Int64 // budget of silent drops
	failNext   atomic.Int64 // budget of erroring sends
	dupNext    atomic.Int64 // budget of duplicated deliveries

	delivered atomic.Int64
	dropped   atomic.Int64
	failed    atomic.Int64
	duped     atomic.Int64
	cut       atomic.Int64 // messages swallowed by a partition
}

// NewLinks creates a transparent link switchboard.
func NewLinks() *Links {
	return &Links{partitioned: make(map[[2]string]bool)}
}

// PartitionOneWay cuts the directed link from→to: messages silently vanish,
// exactly like an asymmetric network partition (from can still hear to).
func (l *Links) PartitionOneWay(from, to string) {
	l.mu.Lock()
	l.partitioned[[2]string{from, to}] = true
	l.mu.Unlock()
}

// Partition cuts both directions between the two sides: every node in a is
// unreachable from every node in b and vice versa.
func (l *Links) Partition(a, b []string) {
	l.mu.Lock()
	for _, x := range a {
		for _, y := range b {
			l.partitioned[[2]string{x, y}] = true
			l.partitioned[[2]string{y, x}] = true
		}
	}
	l.mu.Unlock()
}

// Heal reconnects every cut link.
func (l *Links) Heal() {
	l.mu.Lock()
	clear(l.partitioned)
	l.mu.Unlock()
}

// SetDelay imposes d of link latency on every delivered message (0 clears
// it). The delay is slept on the sender's goroutine, like a slow link.
func (l *Links) SetDelay(d time.Duration) { l.delayNanos.Store(int64(d)) }

// DropNext silently discards the next n messages (success reported to the
// sender — the shape anti-entropy exists to repair).
func (l *Links) DropNext(n int) { l.dropNext.Store(int64(n)) }

// FailNext makes the next n sends error, so senders retry with backoff.
func (l *Links) FailNext(n int) { l.failNext.Store(int64(n)) }

// DupNext delivers the next n messages twice (exercises merge idempotency).
func (l *Links) DupNext(n int) { l.dupNext.Store(int64(n)) }

// LinkStats is a snapshot of the injector's counters.
type LinkStats struct {
	Delivered, Dropped, Failed, Duped, Cut int64
}

// Stats returns the counters.
func (l *Links) Stats() LinkStats {
	return LinkStats{
		Delivered: l.delivered.Load(),
		Dropped:   l.dropped.Load(),
		Failed:    l.failed.Load(),
		Duped:     l.duped.Load(),
		Cut:       l.cut.Load(),
	}
}

// Intercept is the fleet.Intercept deciding each message's fate. Partitions
// take precedence (a cut link swallows everything), then the drop, fail and
// dup budgets spend in that order.
func (l *Links) Intercept(from, to string, msg *fleet.Message) (fleet.Fate, time.Duration) {
	l.mu.RLock()
	cut := l.partitioned[[2]string{from, to}]
	l.mu.RUnlock()
	if cut {
		l.cut.Add(1)
		return fleet.FateDrop, 0
	}
	delay := time.Duration(l.delayNanos.Load())
	if spend(&l.dropNext) {
		l.dropped.Add(1)
		return fleet.FateDrop, delay
	}
	if spend(&l.failNext) {
		l.failed.Add(1)
		return fleet.FateFail, delay
	}
	if spend(&l.dupNext) {
		l.duped.Add(1)
		return fleet.FateDup, delay
	}
	l.delivered.Add(1)
	return fleet.FateDeliver, delay
}

// spend consumes one unit of a fault budget if any remains.
func spend(budget *atomic.Int64) bool {
	for {
		n := budget.Load()
		if n <= 0 {
			return false
		}
		if budget.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// Crashable is a node the fault injector can kill and revive —
// cdn.Node implements it.
type Crashable interface {
	Name() string
	Crash()
	Restart()
	Down() bool
}

// NodeFaults drives crash/restart faults over a set of registered nodes.
type NodeFaults struct {
	mu    sync.Mutex
	nodes map[string]Crashable

	crashes  atomic.Int64
	restarts atomic.Int64
}

// NewNodeFaults creates an empty node-fault registry.
func NewNodeFaults() *NodeFaults {
	return &NodeFaults{nodes: make(map[string]Crashable)}
}

// Register adds a node to the registry.
func (f *NodeFaults) Register(n Crashable) {
	f.mu.Lock()
	f.nodes[n.Name()] = n
	f.mu.Unlock()
}

// Crash kills the named node (no-op when unknown or already down). It
// reports whether a crash happened.
func (f *NodeFaults) Crash(name string) bool {
	f.mu.Lock()
	n := f.nodes[name]
	f.mu.Unlock()
	if n == nil || n.Down() {
		return false
	}
	n.Crash()
	f.crashes.Add(1)
	return true
}

// Restart revives the named node (no-op when unknown or already up).
func (f *NodeFaults) Restart(name string) bool {
	f.mu.Lock()
	n := f.nodes[name]
	f.mu.Unlock()
	if n == nil || !n.Down() {
		return false
	}
	n.Restart()
	f.restarts.Add(1)
	return true
}

// RestartAll revives every down node and returns how many came back.
func (f *NodeFaults) RestartAll() int {
	f.mu.Lock()
	names := make([]string, 0, len(f.nodes))
	for name := range f.nodes {
		names = append(names, name)
	}
	f.mu.Unlock()
	n := 0
	for _, name := range names {
		if f.Restart(name) {
			n++
		}
	}
	return n
}

// Counts returns (crashes, restarts) performed so far.
func (f *NodeFaults) Counts() (int64, int64) {
	return f.crashes.Load(), f.restarts.Load()
}
