// Command chaosorigin serves a tiny HTML origin wrapped in the chaos
// fault-injection switchboard (internal/chaos). It exists for resilience
// drills and the CI chaos smoke: boot it behind botproxy -origin, flip
// faults over the control endpoint, and watch the proxy's circuit breaker
// trip and recover.
//
// Usage:
//
//	chaosorigin [-addr 127.0.0.1:9090] [-control /chaos]
//
// Faults are driven via GET/POST on the control path:
//
//	curl 'http://127.0.0.1:9090/chaos?fail_status=503&fail_count=-1'  # dark
//	curl 'http://127.0.0.1:9090/chaos?latency_ms=200'                 # slow
//	curl 'http://127.0.0.1:9090/chaos?reset_count=5'                  # resets
//	curl 'http://127.0.0.1:9090/chaos?heal=1'                         # heal
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"botdetect/internal/chaos"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9090", "listen address")
		control = flag.String("control", "/chaos", "control endpoint path (outside the proxied namespace)")
	)
	flag.Parse()

	origin := chaos.NewOrigin(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<html><head><title>chaos origin</title></head>"+
			"<body><h1>ok</h1><p>path %s</p></body></html>", r.URL.Path)
	}))

	mux := http.NewServeMux()
	mux.HandleFunc(*control, origin.Control())
	mux.Handle("/", origin)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("chaosorigin: serving on %s (control at %s)", *addr, *control)
	log.Fatal(srv.ListenAndServe())
}
