// Command trafficgen generates a synthetic CoDeeN-style access log by
// driving the agent population (humans plus the paper's robot families)
// against the simulated CDN, and writes it in extended combined log format.
// The log can be replayed through cmd/loganalyze or any external tool.
//
// Usage:
//
//	trafficgen [-out access.log] [-sessions 400] [-seed 2006] [-mix codeen|human|robot]
//	           [-truth truth.tsv]
//
// With -truth, the ground-truth label of every session (<IP> <User-Agent>
// <kind>) is written alongside, enabling offline classifier training.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"botdetect/internal/logfmt"
	"botdetect/internal/workload"
)

func main() {
	var (
		out      = flag.String("out", "access.log", "output access log path (- for stdout)")
		truth    = flag.String("truth", "", "optional ground-truth label file path")
		sessions = flag.Int("sessions", 400, "number of agent sessions")
		seed     = flag.Uint64("seed", 2006, "random seed")
		mixName  = flag.String("mix", "codeen", "traffic mix: codeen, human, robot")
	)
	flag.Parse()

	var mix workload.Mix
	switch *mixName {
	case "codeen":
		mix = workload.CoDeeNMix()
	case "human":
		mix = workload.HumanOnlyMix()
	case "robot":
		mix = workload.RobotOnlyMix()
	default:
		log.Fatalf("trafficgen: unknown mix %q", *mixName)
	}

	res := workload.Run(workload.Config{
		Sessions:   *sessions,
		Seed:       *seed,
		Mix:        mix,
		RecordLogs: true,
	})

	entries := res.Entries
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Time.Before(entries[j].Time) })

	var sink *os.File
	if *out == "-" {
		sink = os.Stdout
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("trafficgen: %v", err)
		}
		defer f.Close()
		sink = f
	}
	w := logfmt.NewWriter(sink)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			log.Fatalf("trafficgen: write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatalf("trafficgen: flush: %v", err)
	}

	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			log.Fatalf("trafficgen: %v", err)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		for key, kind := range res.GroundTruth {
			fmt.Fprintf(bw, "%s\t%s\t%s\n", key.IP, key.UserAgent, kind)
		}
		if err := bw.Flush(); err != nil {
			log.Fatalf("trafficgen: truth flush: %v", err)
		}
	}

	fmt.Fprintf(os.Stderr, "trafficgen: %d sessions, %d log entries, %d requests total\n",
		len(res.Sessions), w.Count(), res.Network.TotalStats().Requests)
}
