// Command botbench regenerates the paper's evaluation artifacts (tables and
// figures) from synthetic CoDeeN-style workloads and prints them as text.
//
// Usage:
//
//	botbench [-exp all|table1|captcha|figure2|figure3|table2|figure4|overhead|decoys|baselines|telemetry|serve|overload|fleet]
//	         [-sessions N] [-seed S] [-bench-json BENCH_telemetry.json]
//	         [-clients N] [-serve-clients N] [-serve-json BENCH_serve.json]
//	         [-serve-heap heap.pprof]
//	         [-overload-json BENCH_overload.json]
//	         [-fleet-json BENCH_fleet.json]
//
// The -sessions flag scales the synthetic workload; larger values give more
// stable percentages at higher runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"botdetect/internal/experiments"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment to run: all, table1, captcha, figure2, figure3, table2, figure4, overhead, decoys, signals, staged, online, baselines, telemetry, serve")
		sessions     = flag.Int("sessions", experiments.DefaultScale().Sessions, "number of synthetic sessions per experiment")
		seed         = flag.Uint64("seed", experiments.DefaultScale().Seed, "random seed")
		benchJSON    = flag.String("bench-json", "", "write the telemetry experiment's result as JSON to this file")
		serveClients = flag.Int("serve-clients", 0, "distinct clients for the serve experiment (0: the experiment's default of 100000)")
		clients      = flag.Int("clients", 0, "alias for -serve-clients; supports the full 1M-client memory-engine run")
		serveJSON    = flag.String("serve-json", "", "write the serve experiment's result as JSON to this file")
		serveHeap    = flag.String("serve-heap", "", "write a pprof heap profile at the end of the serve experiment to this file")
		overloadJSON = flag.String("overload-json", "", "write the overload experiment's result as JSON to this file")
		fleetJSON    = flag.String("fleet-json", "", "write the fleet experiment's result as JSON to this file")
	)
	flag.Parse()

	scale := experiments.Scale{Sessions: *sessions, Seed: *seed}
	selected := strings.Split(strings.ToLower(*exp), ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	ran := 0
	run := func(name string, f func() string) {
		if !want(name) {
			return
		}
		ran++
		start := time.Now()
		out := f()
		fmt.Printf("==> %s (%.1fs)\n\n%s\n", name, time.Since(start).Seconds(), out)
	}

	run("table1", func() string { return experiments.Table1(scale).Format() })
	run("captcha", func() string { return experiments.CaptchaCross(scale).Format() })
	run("figure2", func() string { return experiments.Figure2(scale).Format() })
	run("figure3", func() string { return experiments.Figure3(scale).Format() })
	run("table2", func() string { return experiments.Table2().Format() })
	run("figure4", func() string { return experiments.Figure4(scale).Format() })
	run("overhead", func() string { return experiments.Overhead(scale).Format() })
	run("decoys", func() string { return experiments.AblationDecoys(scale).Format() })
	run("signals", func() string { return experiments.AblationSignals(scale).Format() })
	run("staged", func() string { return experiments.Staged(scale).Format() })
	run("online", func() string { return experiments.OnlineLoop(scale).Format() })
	run("baselines", func() string { return experiments.BaselineComparison(scale).Format() })
	// The serve experiment stands up a live localhost server and drives
	// ~100k clients through it, so it only runs when named explicitly —
	// "-exp all" stays a quick, deterministic artifact regeneration.
	explicit := func(name string) bool {
		for _, s := range selected {
			if s == name {
				return true
			}
		}
		return false
	}
	if explicit("serve") {
		ran++
		start := time.Now()
		n := *serveClients
		if *clients > 0 {
			n = *clients
		}
		res := experiments.ServeBench(experiments.ServeConfig{Clients: n, Seed: *seed, HeapProfile: *serveHeap})
		if *serveJSON != "" {
			if err := os.WriteFile(*serveJSON, res.JSON(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "botbench: writing %s: %v\n", *serveJSON, err)
				os.Exit(1)
			}
		}
		fmt.Printf("==> %s (%.1fs)\n\n%s\n", "serve", time.Since(start).Seconds(), res.Format())
	}
	// The overload experiment also stands up live localhost servers (reverse
	// proxy + chaos origin) and floods them, so it too is explicit-only.
	if explicit("overload") {
		ran++
		start := time.Now()
		res := experiments.OverloadBench(experiments.OverloadConfig{Seed: *seed})
		if *overloadJSON != "" {
			if err := os.WriteFile(*overloadJSON, res.JSON(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "botbench: writing %s: %v\n", *overloadJSON, err)
				os.Exit(1)
			}
		}
		fmt.Printf("==> %s (%.1fs)\n\n%s\n", "overload", time.Since(start).Seconds(), res.Format())
	}
	// The fleet experiment stands up two in-process CDN networks (isolated and
	// replicated arms) with live replication goroutines, node kills and a
	// partition cycle, so it is explicit-only as well.
	if explicit("fleet") {
		ran++
		start := time.Now()
		res := experiments.FleetBench(experiments.FleetConfig{Seed: *seed})
		if *fleetJSON != "" {
			if err := os.WriteFile(*fleetJSON, res.JSON(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "botbench: writing %s: %v\n", *fleetJSON, err)
				os.Exit(1)
			}
		}
		fmt.Printf("==> %s (%.1fs)\n\n%s\n", "fleet", time.Since(start).Seconds(), res.Format())
	}

	run("telemetry", func() string {
		res := experiments.TelemetryBench(scale)
		if *benchJSON != "" {
			if err := os.WriteFile(*benchJSON, res.JSON(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "botbench: writing %s: %v\n", *benchJSON, err)
				os.Exit(1)
			}
		}
		return res.Format()
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "botbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
