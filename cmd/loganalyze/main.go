// Command loganalyze performs the offline analysis path: it replays an
// extended combined access log (e.g. one produced by cmd/trafficgen or by a
// botproxy deployment), reconstructs sessions keyed by <IP, User-Agent>,
// re-derives the detection signals from the instrumentation requests present
// in the log, and prints the Table 1 style breakdown, the combining-rule
// bounds, and a per-session classification summary. With -truth it also
// reports accuracy against ground-truth labels and trains the AdaBoost
// classifier on the Table 2 attributes.
//
// Usage:
//
//	loganalyze -log access.log [-truth truth.tsv] [-min-requests 10]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"botdetect/internal/adaboost"
	"botdetect/internal/detect/rules"
	"botdetect/internal/features"
	"botdetect/internal/logfmt"
	"botdetect/internal/metrics"
	"botdetect/internal/session"
)

func main() {
	var (
		logPath     = flag.String("log", "", "access log path (required; - for stdin)")
		truthPath   = flag.String("truth", "", "optional ground-truth label file (IP\\tUser-Agent\\tkind)")
		minRequests = flag.Int64("min-requests", 10, "only classify sessions with more than this many requests")
	)
	flag.Parse()
	if *logPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader
	if *logPath == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(*logPath)
		if err != nil {
			log.Fatalf("loganalyze: %v", err)
		}
		defer f.Close()
		in = f
	}

	// Stream the log straight into the session tracker: replay memory is
	// bounded by the live session table, not by the log size, so multi-GB
	// access logs replay without materialising a []Entry.
	tracker := session.NewTracker(session.Config{})
	var total int64
	err := logfmt.ReadEach(in, func(e logfmt.Entry) error {
		total++
		key := session.Key{IP: e.ClientIP, UserAgent: e.UserAgent}
		if sig, ok := signalFromPath(e.Path); ok {
			tracker.Mark(key, sig)
			return nil
		}
		tracker.Observe(e)
		return nil
	})
	if err != nil {
		log.Fatalf("loganalyze: %v", err)
	}
	if total == 0 {
		log.Fatal("loganalyze: log contains no entries")
	}
	snaps := tracker.FlushAll()

	// Table 1 style breakdown and combining-rule bounds.
	b := rules.Breakdown(snaps, *minRequests)
	fmt.Println(b.Table().Format())
	fmt.Printf("Human-share lower bound (mouse): %s%%\n", metrics.Pct(b.HumanLowerBound()))
	fmt.Printf("Human-share upper bound (S_H):   %s%%\n", metrics.Pct(b.HumanUpperBound()))
	fmt.Printf("Max false positive rate:         %s%%\n\n", metrics.Pct(b.MaxFalsePositiveRate()))

	truth := loadTruth(*truthPath)
	if truth == nil {
		return
	}

	// Accuracy of the combining rule against the labels.
	var cm metrics.ConfusionMatrix
	var examples []features.Example
	for _, s := range snaps {
		if int64(s.Counts.Total) <= *minRequests {
			continue
		}
		kind, ok := truth[s.Key]
		if !ok {
			continue
		}
		isHuman := strings.HasPrefix(kind, "human")
		cm.Record(rules.InHumanSet(s), isHuman)
		examples = append(examples, features.Example{X: s.Features, Human: isHuman})
	}
	fmt.Printf("Combining rule vs ground truth: %s\n", cm.String())

	train, test := adaboost.Split(examples, 0.5, 2006)
	model, err := adaboost.Train(train, adaboost.Config{Rounds: 200})
	if err != nil {
		fmt.Printf("AdaBoost training skipped: %v\n", err)
		return
	}
	fmt.Printf("AdaBoost (200 rounds): train accuracy %.1f%%, test accuracy %.1f%%\n",
		model.Accuracy(train)*100, model.Accuracy(test)*100)
	top := model.TopFeatures(3)
	names := make([]string, len(top))
	for i, idx := range top {
		names[i] = features.Names[idx]
	}
	fmt.Printf("Most contributing attributes: %s\n", strings.Join(names, ", "))
}

// signalFromPath re-derives a detection signal from an instrumentation
// request path recorded in the log (offline equivalent of HandleBeacon; keys
// cannot be re-validated offline, so mouse beacons are taken at face value).
func signalFromPath(path string) (session.Signal, bool) {
	clean := path
	if i := strings.IndexByte(clean, '?'); i >= 0 {
		clean = clean[:i]
	}
	if !strings.HasPrefix(clean, "/__bd/") {
		return 0, false
	}
	rest := strings.TrimPrefix(clean, "/__bd/")
	switch {
	case strings.HasPrefix(rest, "js/"):
		return session.SignalJS, true
	case strings.HasPrefix(rest, "ua/"):
		return session.SignalJS, true
	case strings.HasPrefix(rest, "hidden/"):
		return session.SignalHidden, true
	case strings.HasPrefix(rest, "index_") && strings.HasSuffix(rest, ".js"):
		return session.SignalJSFile, true
	case strings.HasSuffix(rest, ".css"):
		return session.SignalCSS, true
	case strings.HasSuffix(rest, ".jpg"):
		return session.SignalMouse, true
	default:
		return 0, false
	}
}

// loadTruth reads the trafficgen ground-truth file.
func loadTruth(path string) map[session.Key]string {
	if path == "" {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("loganalyze: %v", err)
	}
	defer f.Close()
	truth := make(map[session.Key]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), "\t", 3)
		if len(parts) != 3 {
			continue
		}
		truth[session.Key{IP: parts[0], UserAgent: parts[1]}] = parts[2]
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("loganalyze: reading truth: %v", err)
	}
	return truth
}
