// Command botproxy runs the robot-detecting proxy. By default it serves a
// built-in synthetic site through the detection middleware; with -origin it
// instead acts as an instrumenting reverse proxy in front of an existing
// origin server, the deployment shape the paper used on CoDeeN nodes.
//
// Usage:
//
//	botproxy [-addr :8080] [-origin http://upstream:9090] [-decoys 4]
//	         [-obfuscate] [-policy] [-captcha] [-pprof]
//	         [-admin-addr 127.0.0.1:8081] [-admin-token T] [-admin-public]
//	         [-max-sessions N] [-memory-budget BYTES]
//	         [-upstream-dial-timeout 5s] [-upstream-header-timeout 15s]
//	         [-upstream-request-timeout 60s] [-upstream-retries 2]
//	         [-breaker-failures 5] [-breaker-cooldown 10s]
//
// The /__bd/ path prefix is reserved for instrumentation (beacons, generated
// stylesheets and scripts, hidden links, CAPTCHA endpoints). The admin
// surface — /__bd/status (plain-text sessions and verdicts), /__bd/metrics
// (Prometheus text format), /__bd/admin/* (session inspection, script
// rotation, retraining, verdict overrides) and, behind -pprof,
// /__bd/debug/pprof/ — serves on its own listener, loopback by default
// (-admin-addr), never on the public listener unless -admin-public is given
// together with a mandatory -admin-token bearer token: the override endpoint
// asserts ground truth (a bot could whitelist itself and poison the online
// trainer) and the status views carry client IPs and User-Agents.
package main

import (
	"flag"
	"log"
	"net/http"
	"net/url"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/captcha"
	"botdetect/internal/core"
	"botdetect/internal/policy"
	"botdetect/internal/proxy"
	"botdetect/internal/webmodel"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		origin      = flag.String("origin", "", "upstream origin URL (empty: serve the built-in synthetic site)")
		decoys      = flag.Int("decoys", 4, "decoy beacon functions per page")
		obfuscate   = flag.Bool("obfuscate", true, "lexically obfuscate the generated JavaScript")
		withPol     = flag.Bool("policy", true, "enable rate limiting / blocking of robot sessions")
		withCap     = flag.Bool("captcha", true, "enable CAPTCHA endpoints under /__bd/captcha/")
		seed        = flag.Uint64("seed", uint64(time.Now().UnixNano()), "random seed for keys and scripts")
		pages       = flag.Int("pages", 200, "pages in the built-in synthetic site (ignored with -origin)")
		train       = flag.Bool("train", true, "retrain the AdaBoost model online from labelled outcomes and hot-swap it")
		trainEvery  = flag.Duration("train-every", time.Minute, "how often the online trainer checks for new outcomes")
		trainMinNew = flag.Int("train-min-new", 64, "minimum new labelled outcomes before a retrain")
		rotEvery    = flag.Duration("rotate-every", 0, "rotate the script-generation seed on this interval (0 disables timed rotation)")
		rotPages    = flag.Int64("rotate-pages", 0, "rotate the script-generation seed after this many pages served (0 disables count-based rotation)")
		withPprof   = flag.Bool("pprof", false, "mount net/http/pprof under /__bd/debug/pprof/")
		adminAddr   = flag.String("admin-addr", "127.0.0.1:8081", "listen address for the admin surface (loopback by default; empty disables the admin listener)")
		adminToken  = flag.String("admin-token", "", "bearer token required on every admin request (Authorization: Bearer <token>)")
		adminPublic = flag.Bool("admin-public", false, "also mount the admin surface on the public listener; requires -admin-token")

		maxSessions  = flag.Int("max-sessions", 0, "session-table capacity driving the overload ladder (0: engine default)")
		memoryBudget = flag.Int64("memory-budget", 0, "estimated tracker+keystore memory budget in bytes; occupancy above it degrades service (0: unbudgeted)")

		upDialTimeout    = flag.Duration("upstream-dial-timeout", 5*time.Second, "origin TCP dial timeout (with -origin)")
		upHeaderTimeout  = flag.Duration("upstream-header-timeout", 15*time.Second, "origin response-header timeout (with -origin)")
		upRequestTimeout = flag.Duration("upstream-request-timeout", 60*time.Second, "end-to-end origin request deadline, retries included (with -origin)")
		upRetries        = flag.Int("upstream-retries", 2, "retries for failed idempotent origin requests (with -origin)")
		brFailures       = flag.Int("breaker-failures", 5, "consecutive origin failures that open the circuit breaker (with -origin)")
		brCooldown       = flag.Duration("breaker-cooldown", 10*time.Second, "how long the breaker stays open before a half-open probe (with -origin)")
	)
	flag.Parse()

	det := core.New(core.Config{
		Decoys:       *decoys,
		ObfuscateJS:  *obfuscate,
		Seed:         *seed,
		MaxSessions:  *maxSessions,
		MemoryBudget: *memoryBudget,
	})
	cfg := proxy.Config{
		Engine:            det,
		TrustForwardedFor: true,
		Upstream: proxy.UpstreamConfig{
			DialTimeout:           *upDialTimeout,
			ResponseHeaderTimeout: *upHeaderTimeout,
			RequestTimeout:        *upRequestTimeout,
			Retries:               *upRetries,
			BreakerFailures:       *brFailures,
			BreakerCooldown:       *brCooldown,
		},
	}
	if *withPol {
		cfg.Policy = policy.NewEngine(policy.Config{})
	}
	if *withCap {
		cfg.Captcha = captcha.NewService(captcha.Config{Seed: *seed})
	}

	var mw *proxy.Middleware
	if *origin != "" {
		u, err := url.Parse(*origin)
		if err != nil {
			log.Fatalf("botproxy: bad -origin %q: %v", *origin, err)
		}
		mw = proxy.NewReverseProxy(u, cfg)
		log.Printf("botproxy: reverse proxying %s on %s", *origin, *addr)
	} else {
		site := webmodel.Generate(webmodel.SiteConfig{Seed: *seed, NumPages: *pages})
		mw = proxy.New(site.Handler(), cfg)
		log.Printf("botproxy: serving built-in site (%d pages) on %s", site.NumPages(), *addr)
	}

	// Amortised idle-session expiry: one shard swept per tick, so no request
	// ever pays for a full-table sweep.
	stopSweeper := det.StartSweeper(time.Minute)
	defer stopSweeper()

	// Automatic script rotation: reseeding the generator invalidates every
	// cached robot copy of the instrumentation script, so replayed beacons
	// from stale scripts stop validating. Timer- and volume-based triggers
	// compose; either alone also works.
	if *rotEvery > 0 || *rotPages > 0 {
		stopRotator := det.StartRotator(*rotEvery, *rotPages)
		defer stopRotator()
		log.Printf("botproxy: script rotation enabled (every %s / %d pages)", *rotEvery, *rotPages)
	}

	// Online training loop: labelled outcomes accumulate as CAPTCHAs resolve
	// and beacons confirm ground truth; once enough new material exists the
	// trainer refits the AdaBoost ensemble and hot-swaps it onto the serving
	// path (a single atomic store — no locks on the read path).
	if *train {
		stopTrainer := det.StartTrainer(*trainEvery, *trainMinNew, adaboost.Config{Rounds: 200})
		defer stopTrainer()
		log.Printf("botproxy: online trainer enabled (every %s, min %d new outcomes)", *trainEvery, *trainMinNew)
	}

	if cfg.Policy != nil {
		cfg.Policy.RegisterMetrics(det.Telemetry().Registry(), "")
	}
	admin := proxy.NewAdmin(proxy.AdminConfig{
		Engine:      det,
		Policy:      cfg.Policy,
		EnablePprof: *withPprof,
		Retrain:     adaboost.Config{Rounds: 200},
		AuthToken:   *adminToken,
		Breaker:     mw.Breaker(),
	})

	mux := http.NewServeMux()
	mux.Handle("/", mw)

	// The admin surface carries mutating controls and per-client PII, so it
	// binds its own listener — loopback by default — instead of riding the
	// public mux. Exposing it publicly is an explicit opt-in that demands a
	// bearer token; without one, any client could POST /__bd/admin/override
	// to clear its own CAPTCHA/block state and feed false labels to the
	// online trainer.
	if *adminPublic {
		if *adminToken == "" {
			log.Fatal("botproxy: -admin-public requires -admin-token; the admin surface must not be open to anonymous clients")
		}
		admin.Register(mux)
		log.Printf("botproxy: admin surface mounted on the public listener (token-gated)")
	}
	if *adminAddr != "" {
		adminMux := http.NewServeMux()
		admin.Register(adminMux)
		adminSrv := &http.Server{
			Addr:              *adminAddr,
			Handler:           adminMux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() { log.Fatal(adminSrv.ListenAndServe()) }()
		log.Printf("botproxy: admin surface on %s", *adminAddr)
	} else if !*adminPublic {
		log.Printf("botproxy: admin surface disabled (-admin-addr is empty and -admin-public is off)")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		// Per-connection serve state: lets the middleware reuse one Prepared
		// page, stream rewriter, and keystore scratch across every request on
		// a keep-alive connection (zero allocations at steady state).
		ConnContext: proxy.ConnContext,
	}
	log.Fatal(srv.ListenAndServe())
}
