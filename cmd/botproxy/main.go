// Command botproxy runs the robot-detecting proxy. By default it serves a
// built-in synthetic site through the detection middleware; with -origin it
// instead acts as an instrumenting reverse proxy in front of an existing
// origin server, the deployment shape the paper used on CoDeeN nodes.
//
// Usage:
//
//	botproxy [-addr :8080] [-origin http://upstream:9090] [-decoys 4]
//	         [-obfuscate] [-policy] [-captcha] [-status /__bd/status]
//
// The /__bd/ path prefix is reserved for instrumentation (beacons, generated
// stylesheets and scripts, hidden links, CAPTCHA endpoints) and a plain-text
// status page listing live sessions and verdicts.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"sort"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/captcha"
	"botdetect/internal/core"
	"botdetect/internal/detect"
	"botdetect/internal/policy"
	"botdetect/internal/proxy"
	"botdetect/internal/webmodel"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		origin      = flag.String("origin", "", "upstream origin URL (empty: serve the built-in synthetic site)")
		decoys      = flag.Int("decoys", 4, "decoy beacon functions per page")
		obfuscate   = flag.Bool("obfuscate", true, "lexically obfuscate the generated JavaScript")
		withPol     = flag.Bool("policy", true, "enable rate limiting / blocking of robot sessions")
		withCap     = flag.Bool("captcha", true, "enable CAPTCHA endpoints under /__bd/captcha/")
		seed        = flag.Uint64("seed", uint64(time.Now().UnixNano()), "random seed for keys and scripts")
		pages       = flag.Int("pages", 200, "pages in the built-in synthetic site (ignored with -origin)")
		train       = flag.Bool("train", true, "retrain the AdaBoost model online from labelled outcomes and hot-swap it")
		trainEvery  = flag.Duration("train-every", time.Minute, "how often the online trainer checks for new outcomes")
		trainMinNew = flag.Int("train-min-new", 64, "minimum new labelled outcomes before a retrain")
	)
	flag.Parse()

	det := core.New(core.Config{
		Decoys:      *decoys,
		ObfuscateJS: *obfuscate,
		Seed:        *seed,
	})
	cfg := proxy.Config{Engine: det, TrustForwardedFor: true}
	if *withPol {
		cfg.Policy = policy.NewEngine(policy.Config{})
	}
	if *withCap {
		cfg.Captcha = captcha.NewService(captcha.Config{Seed: *seed})
	}

	var mw *proxy.Middleware
	if *origin != "" {
		u, err := url.Parse(*origin)
		if err != nil {
			log.Fatalf("botproxy: bad -origin %q: %v", *origin, err)
		}
		mw = proxy.NewReverseProxy(u, cfg)
		log.Printf("botproxy: reverse proxying %s on %s", *origin, *addr)
	} else {
		site := webmodel.Generate(webmodel.SiteConfig{Seed: *seed, NumPages: *pages})
		mw = proxy.New(site.Handler(), cfg)
		log.Printf("botproxy: serving built-in site (%d pages) on %s", site.NumPages(), *addr)
	}

	// Amortised idle-session expiry: one shard swept per tick, so no request
	// ever pays for a full-table sweep.
	stopSweeper := det.StartSweeper(time.Minute)
	defer stopSweeper()

	// Online training loop: labelled outcomes accumulate as CAPTCHAs resolve
	// and beacons confirm ground truth; once enough new material exists the
	// trainer refits the AdaBoost ensemble and hot-swaps it onto the serving
	// path (a single atomic store — no locks on the read path).
	if *train {
		stopTrainer := det.StartTrainer(*trainEvery, *trainMinNew, adaboost.Config{Rounds: 200})
		defer stopTrainer()
		log.Printf("botproxy: online trainer enabled (every %s, min %d new outcomes)", *trainEvery, *trainMinNew)
	}

	mux := http.NewServeMux()
	mux.Handle("/", mw)
	mux.HandleFunc("/__bd/status", func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w, det)
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

// writeStatus renders a plain-text overview of live sessions and verdicts.
func writeStatus(w http.ResponseWriter, det *core.Engine) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	stats := det.Stats()
	fmt.Fprintf(w, "detector chain: %s\n", detect.Describe(det.Detector()))
	if m := det.Model(); m != nil {
		fmt.Fprintf(w, "learned model: %s (%d labelled outcomes buffered)\n", m, det.OutcomeCount())
	} else {
		fmt.Fprintf(w, "learned model: none yet (%d labelled outcomes buffered)\n", det.OutcomeCount())
	}
	fmt.Fprintf(w, "pages instrumented: %d\n", stats.PagesInstrumented)
	fmt.Fprintf(w, "beacons: mouse=%d decoy=%d replay=%d exec=%d css=%d hidden=%d ua-mismatch=%d\n",
		stats.MouseBeacons, stats.DecoyBeacons, stats.ReplayBeacons, stats.ExecBeacons,
		stats.CSSBeacons, stats.HiddenHits, stats.UAMismatches)
	sessions := det.Sessions()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].Counts.Total > sessions[j].Counts.Total })
	fmt.Fprintf(w, "active sessions: %d\n\n", len(sessions))
	for i, s := range sessions {
		if i >= 50 {
			fmt.Fprintf(w, "... and %d more\n", len(sessions)-i)
			break
		}
		v := det.ClassifySnapshot(s)
		fmt.Fprintf(w, "%-18s %-40.40s reqs=%-5d %s\n", s.Key.IP, s.Key.UserAgent, s.Counts.Total, v)
	}
}
