// CDN simulation: run the CoDeeN-scale scenario end to end — a multi-node
// proxy network, the calibrated human/robot traffic mix, detection on every
// node — and print the regenerated Table 1, the Section 3.1 bounds, the
// detection-latency quantiles of Figure 2, and per-robot-family detection
// rates.
//
// Run with:
//
//	go run ./examples/cdn-simulation [-sessions 500]
package main

import (
	"flag"
	"fmt"
	"sort"

	"botdetect/internal/agents"
	"botdetect/internal/core"
	"botdetect/internal/detect/rules"
	"botdetect/internal/metrics"
	"botdetect/internal/session"
	"botdetect/internal/workload"
)

func main() {
	sessions := flag.Int("sessions", 500, "number of client sessions to simulate")
	flag.Parse()

	res := workload.Run(workload.Config{
		Sessions:   *sessions,
		Seed:       2006,
		Nodes:      8,
		WithPolicy: true,
	})
	fmt.Printf("simulated %d sessions across %d nodes, %d requests total\n\n",
		len(res.Sessions), len(res.Network.Nodes()), res.Network.TotalStats().Requests)

	// Table 1 and the bounds.
	b := rules.Breakdown(res.Snapshots(), 10)
	fmt.Println(b.Table().Format())
	fmt.Printf("human share bounds: %s%% .. %s%%, max FPR %s%%\n\n",
		metrics.Pct(b.HumanLowerBound()), metrics.Pct(b.HumanUpperBound()), metrics.Pct(b.MaxFalsePositiveRate()))

	// Figure 2 quantiles.
	latencies := rules.DetectionLatencies(res.Snapshots(), session.SignalMouse, session.SignalCSS)
	mouse := latencies[session.SignalMouse]
	css := latencies[session.SignalCSS]
	fmt.Printf("detection latency: mouse 80%%≤%.0f reqs, 95%%≤%.0f; CSS 95%%≤%.0f, 99%%≤%.0f\n\n",
		mouse.Quantile(0.80), mouse.Quantile(0.95), css.Quantile(0.95), css.Quantile(0.99))

	// Per-family detection outcomes.
	type tally struct{ total, robotVerdict, humanVerdict, undecided int }
	perKind := map[agents.Kind]*tally{}
	for _, s := range res.Sessions {
		if s.Snapshot.Counts.Total <= 10 {
			continue
		}
		t, ok := perKind[s.Kind]
		if !ok {
			t = &tally{}
			perKind[s.Kind] = t
		}
		t.total++
		switch s.Verdict.Class {
		case core.ClassRobot:
			t.robotVerdict++
		case core.ClassHuman:
			t.humanVerdict++
		default:
			t.undecided++
		}
	}
	kinds := make([]agents.Kind, 0, len(perKind))
	for k := range perKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	table := metrics.NewTable("Per-family verdicts (sessions with > 10 requests)",
		"Family", "Sessions", "Classified robot", "Classified human", "Undecided")
	for _, k := range kinds {
		t := perKind[k]
		table.AddRow(k.String(), fmt.Sprintf("%d", t.total), fmt.Sprintf("%d", t.robotVerdict),
			fmt.Sprintf("%d", t.humanVerdict), fmt.Sprintf("%d", t.undecided))
	}
	fmt.Println(table.Format())

	stats := res.Network.TotalStats()
	fmt.Printf("enforcement: %d requests blocked, %d throttled, %d captchas solved\n",
		stats.BlockedRequests, stats.ThrottledRequests, stats.CaptchaSolved)
}
