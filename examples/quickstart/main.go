// Quickstart: protect an existing http.Handler with the robot-detection
// middleware in a few lines, then watch the detector classify a browser-like
// client and a crawler-like client.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"botdetect/internal/core"
	"botdetect/internal/htmlmod"
	"botdetect/internal/proxy"
	"botdetect/internal/session"
)

func main() {
	// 1. Your existing application handler: any http.Handler works.
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<html><head><title>shop</title></head><body>
<h1>Welcome</h1>
<ul><li><a href="/catalog">Catalog</a></li><li><a href="/about">About</a></li></ul>
<img src="/logo.png">
</body></html>`)
	})

	// 2. Wrap it with the detector middleware.
	detector := core.New(core.Config{ObfuscateJS: true, Seed: 42})
	protected := proxy.New(app, proxy.Config{Engine: detector})

	// 3. Serve it (httptest keeps this example self-contained; in production
	//    pass `protected` to http.ListenAndServe).
	server := httptest.NewServer(protected)
	defer server.Close()
	fmt.Println("protected application running at", server.URL)

	// 4. A browser-like client: loads the page, fetches the injected
	//    stylesheet and script, and fires the input-event beacon the way a
	//    real browser executing the JavaScript would.
	browserUA := "Mozilla/5.0 (Windows NT 5.1) Firefox/1.5"
	page := get(server.URL+"/", browserUA)
	sum := htmlmod.Extract([]byte(page))
	fmt.Printf("\nbrowser client: page has %d injected stylesheets/scripts and a hidden trap link: %v\n",
		len(sum.Stylesheets)+len(sum.Scripts), len(sum.HiddenLinks) == 1)
	for _, css := range sum.Stylesheets {
		get(server.URL+css, browserUA)
	}
	var script string
	for _, js := range sum.Scripts {
		script = get(server.URL+js, browserUA)
	}
	// "Execute" the script: extract the genuine handler beacon and fetch it.
	if beacon := findBeacon(script); beacon != "" {
		get(server.URL+beacon, browserUA)
	}
	browserKey := session.Key{IP: "127.0.0.1", UserAgent: browserUA}
	fmt.Println("browser verdict:", detector.Classify(browserKey))

	// 5. A crawler-like client: fetches pages only, follows the hidden link.
	crawlerUA := "ExampleCrawler/1.0 (+http://example.org/bot)"
	crawlerPage := get(server.URL+"/", crawlerUA)
	crawlerSum := htmlmod.Extract([]byte(crawlerPage))
	for _, l := range crawlerSum.HiddenLinks {
		get(server.URL+l, crawlerUA)
	}
	crawlerKey := session.Key{IP: "127.0.0.1", UserAgent: crawlerUA}
	fmt.Println("crawler verdict:", detector.Classify(crawlerKey))
}

// get fetches a URL with the given User-Agent and returns the body.
func get(url, ua string) string {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("User-Agent", ua)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(body)
}

// findBeacon extracts the event-handler beacon URL from the generated script
// (works for both plain and obfuscated scripts in this small example by
// decoding String.fromCharCode sequences).
func findBeacon(script string) string {
	marker := "function __bd_f()"
	i := strings.Index(script, marker)
	if i < 0 {
		return ""
	}
	rest := script[i:]
	j := strings.Index(rest, ".src = ")
	if j < 0 {
		return ""
	}
	expr := rest[j+len(".src = "):]
	if nl := strings.IndexByte(expr, '\n'); nl >= 0 {
		expr = expr[:nl]
	}
	expr = strings.TrimSuffix(strings.TrimSpace(expr), ";")
	if strings.HasPrefix(expr, "'") {
		return strings.Trim(expr, "'")
	}
	const fcc = "String.fromCharCode("
	if strings.HasPrefix(expr, fcc) {
		var b strings.Builder
		for _, tok := range strings.Split(strings.TrimSuffix(strings.TrimPrefix(expr, fcc), ")"), ",") {
			n := 0
			for _, c := range strings.TrimSpace(tok) {
				if c < '0' || c > '9' {
					return ""
				}
				n = n*10 + int(c-'0')
			}
			b.WriteByte(byte(n))
		}
		return b.String()
	}
	return ""
}
