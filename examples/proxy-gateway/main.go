// Proxy gateway: protect an origin server you do not control by putting the
// instrumenting reverse proxy in front of it — the deployment shape the
// paper used on CoDeeN nodes. The example starts a synthetic origin, fronts
// it with the detector plus the policy engine, then drives an abusive
// click-fraud style client through it until the policy engine blocks it.
//
// Run with:
//
//	go run ./examples/proxy-gateway
//
// Pass -serve to keep the gateway running for manual exploration instead of
// exiting after the scripted demonstration.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"botdetect/internal/captcha"
	"botdetect/internal/core"
	"botdetect/internal/policy"
	"botdetect/internal/proxy"
	"botdetect/internal/session"
	"botdetect/internal/webmodel"
)

func main() {
	serve := flag.Bool("serve", false, "keep the gateway running on :8080 after the demo")
	flag.Parse()

	// The origin: an existing site we cannot modify.
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 7, NumPages: 50})
	origin := httptest.NewServer(site.Handler())
	defer origin.Close()
	originURL, err := url.Parse(origin.URL)
	if err != nil {
		log.Fatal(err)
	}

	// The gateway: detection + enforcement in front of the origin.
	detector := core.New(core.Config{ObfuscateJS: true, Seed: 99})
	engine := policy.NewEngine(policy.Config{})
	gateway := proxy.NewReverseProxy(originURL, proxy.Config{
		Engine:  detector,
		Policy:  engine,
		Captcha: captcha.NewService(captcha.Config{Seed: 99}),
	})
	front := httptest.NewServer(gateway)
	defer front.Close()
	fmt.Println("origin:", origin.URL)
	fmt.Println("gateway:", front.URL)

	// An abusive automated client hammering dynamic URLs through the gateway.
	botUA := "Mozilla/4.0 (compatible; MSIE 6.0)" // forged browser agent
	blockedAt := -1
	for i := 0; i < 60; i++ {
		req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/cgi-bin/app1.cgi?ad=%d", front.URL, i), nil)
		req.Header.Set("User-Agent", botUA)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusForbidden && blockedAt < 0 {
			blockedAt = i
			break
		}
	}
	key := session.Key{IP: "127.0.0.1", UserAgent: botUA}
	fmt.Println("click-fraud client verdict:", detector.Classify(key))
	if blockedAt >= 0 {
		fmt.Printf("policy engine blocked the client at request %d\n", blockedAt+1)
	} else {
		fmt.Println("policy engine did not block the client (unexpected)")
	}
	fmt.Println("policy stats:", fmt.Sprintf("%+v", engine.Stats()))

	if *serve {
		fmt.Println("serving gateway on :8080 — press Ctrl+C to stop")
		log.Fatal(http.ListenAndServe(":8080", gateway))
	}
}
