// Log analysis: the offline path. Generate a synthetic CoDeeN-style access
// log with the workload driver, write it to disk in extended combined log
// format, read it back, reconstruct sessions and detection signals, print
// the Table 1 style breakdown, and train the AdaBoost classifier of
// Section 4.2 on the Table 2 attributes using the ground-truth labels.
//
// Run with:
//
//	go run ./examples/log-analysis
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"botdetect/internal/adaboost"
	"botdetect/internal/detect/rules"
	"botdetect/internal/features"
	"botdetect/internal/logfmt"
	"botdetect/internal/metrics"
	"botdetect/internal/session"
	"botdetect/internal/workload"
)

func main() {
	// 1. Generate traffic and keep the raw log entries.
	res := workload.Run(workload.Config{Sessions: 200, Seed: 17, RecordLogs: true})
	entries := res.Entries
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Time.Before(entries[j].Time) })
	fmt.Printf("generated %d sessions, %d log lines\n", len(res.Sessions), len(entries))

	// 2. Write the access log the way a deployed proxy would.
	dir, err := os.MkdirTemp("", "botdetect-logs")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "access.log")
	f, err := os.Create(logPath)
	if err != nil {
		log.Fatal(err)
	}
	w := logfmt.NewWriter(f)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", logPath)

	// 3. Read it back and rebuild sessions offline.
	in, err := os.Open(logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	parsed, err := logfmt.ReadAll(in)
	if err != nil {
		log.Fatal(err)
	}
	tracker := session.NewTracker(session.Config{})
	for _, e := range parsed {
		key := session.Key{IP: e.ClientIP, UserAgent: e.UserAgent}
		if sig, ok := signalFromPath(e.Path); ok {
			tracker.Mark(key, sig)
			continue
		}
		tracker.Observe(e)
	}
	snaps := tracker.FlushAll()

	// 4. The Table 1 breakdown and the combining-rule bounds.
	b := rules.Breakdown(snaps, 10)
	fmt.Println()
	fmt.Println(b.Table().Format())
	fmt.Printf("human share bounds: %s%% .. %s%% (max FPR %s%%)\n\n",
		metrics.Pct(b.HumanLowerBound()), metrics.Pct(b.HumanUpperBound()), metrics.Pct(b.MaxFalsePositiveRate()))

	// 5. Train AdaBoost on the Table 2 attributes with ground-truth labels.
	var examples []features.Example
	for _, s := range snaps {
		if s.Counts.Total <= 10 {
			continue
		}
		kind, ok := res.GroundTruth[s.Key]
		if !ok {
			continue
		}
		examples = append(examples, features.Example{X: s.Features, Human: kind.IsHuman()})
	}
	train, test := adaboost.Split(examples, 0.5, 23)
	model, err := adaboost.Train(train, adaboost.Config{Rounds: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AdaBoost: %d examples, train accuracy %.1f%%, test accuracy %.1f%%\n",
		len(examples), model.Accuracy(train)*100, model.Accuracy(test)*100)
	var names []string
	for _, idx := range model.TopFeatures(3) {
		names = append(names, features.Names[idx])
	}
	fmt.Println("most contributing attributes:", strings.Join(names, ", "))
}

// signalFromPath re-derives detection signals from instrumentation requests
// present in the log (same convention as cmd/loganalyze).
func signalFromPath(path string) (session.Signal, bool) {
	clean := path
	if i := strings.IndexByte(clean, '?'); i >= 0 {
		clean = clean[:i]
	}
	if !strings.HasPrefix(clean, "/__bd/") {
		return 0, false
	}
	rest := strings.TrimPrefix(clean, "/__bd/")
	switch {
	case strings.HasPrefix(rest, "js/"), strings.HasPrefix(rest, "ua/"):
		return session.SignalJS, true
	case strings.HasPrefix(rest, "hidden/"):
		return session.SignalHidden, true
	case strings.HasPrefix(rest, "index_") && strings.HasSuffix(rest, ".js"):
		return session.SignalJSFile, true
	case strings.HasSuffix(rest, ".css"):
		return session.SignalCSS, true
	case strings.HasSuffix(rest, ".jpg"):
		return session.SignalMouse, true
	default:
		return 0, false
	}
}
