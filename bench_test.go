// Package botdetect holds the repository-level benchmark harness: one
// benchmark per table and figure of the paper's evaluation (each regenerates
// the artifact from a synthetic workload and reports its headline numbers as
// benchmark metrics), plus micro-benchmarks for the hot paths of the
// detection pipeline (page rewriting, script generation, beacon handling,
// session accounting, AdaBoost training).
//
// Run with:
//
//	go test -bench=. -benchmem
package botdetect

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/agents"
	"botdetect/internal/cdn"
	"botdetect/internal/core"
	"botdetect/internal/experiments"
	"botdetect/internal/features"
	"botdetect/internal/htmlmod"
	"botdetect/internal/jsgen"
	"botdetect/internal/keystore"
	"botdetect/internal/logfmt"
	"botdetect/internal/rng"
	"botdetect/internal/session"
	"botdetect/internal/shard"
	"botdetect/internal/webmodel"
)

// benchScale keeps the per-iteration experiment cost manageable while still
// producing stable shapes; cmd/botbench runs the full default scale.
func benchScale(i int) experiments.Scale {
	return experiments.Scale{Sessions: 200, Seed: uint64(1000 + i)}
}

// BenchmarkTable1SessionBreakdown regenerates Table 1 (session breakdown and
// the Section 3.1 bounds) once per iteration.
func BenchmarkTable1SessionBreakdown(b *testing.B) {
	var last experiments.Table1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Table1(benchScale(i))
	}
	b.ReportMetric(last.Breakdown.CSSFraction()*100, "css_%")
	b.ReportMetric(last.Breakdown.MouseFraction()*100, "mouse_%")
	b.ReportMetric(last.MaxFPR*100, "maxFPR_%")
}

// BenchmarkFigure2DetectionLatency regenerates the Figure 2 CDFs.
func BenchmarkFigure2DetectionLatency(b *testing.B) {
	var last experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure2(benchScale(i))
	}
	b.ReportMetric(last.Mouse80, "mouse_p80_reqs")
	b.ReportMetric(last.Mouse95, "mouse_p95_reqs")
	b.ReportMetric(last.CSS95, "css_p95_reqs")
}

// BenchmarkFigure3AbuseComplaints regenerates the Figure 3 complaint
// timeline, including the enforcement-effectiveness calibration run.
func BenchmarkFigure3AbuseComplaints(b *testing.B) {
	var last experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure3(benchScale(i))
	}
	b.ReportMetric(float64(last.PeakBeforeDeployment), "peak_complaints")
	b.ReportMetric(last.ReductionFactor, "reduction_x")
}

// BenchmarkFigure4AdaBoost regenerates the Figure 4 accuracy curve (AdaBoost
// with 200 rounds at request prefixes 20..160).
func BenchmarkFigure4AdaBoost(b *testing.B) {
	var last experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure4(experiments.Scale{Sessions: 120, Seed: uint64(2000 + i)})
	}
	if len(last.Points) > 0 {
		b.ReportMetric(last.Points[0].TestAccuracy*100, "acc20_%")
		b.ReportMetric(last.Points[len(last.Points)-1].TestAccuracy*100, "acc160_%")
	}
}

// BenchmarkOverheadJSGeneration measures the per-page cost of generating an
// obfuscated beacon script (the paper's 1 KB / sub-millisecond claim).
func BenchmarkOverheadJSGeneration(b *testing.B) {
	gen := jsgen.NewGenerator()
	src := rng.New(9)
	decoys := []string{src.DigitKey(10), src.DigitKey(10), src.DigitKey(10), src.DigitKey(10)}
	b.ResetTimer()
	size := 0
	for i := 0; i < b.N; i++ {
		script := gen.Script(jsgen.Params{
			BeaconBase:  "http://www.example.com",
			RealKey:     "0729395160",
			DecoyKeys:   decoys,
			UAReportKey: "5550001111",
			Obfuscate:   true,
			Seed:        uint64(i),
		})
		size = len(script)
	}
	b.ReportMetric(float64(size), "script_bytes")
}

// BenchmarkOverheadBandwidth regenerates the Section 3.2 bandwidth-overhead
// measurement from a workload run.
func BenchmarkOverheadBandwidth(b *testing.B) {
	var last experiments.OverheadResult
	for i := 0; i < b.N; i++ {
		last = experiments.Overhead(experiments.Scale{Sessions: 120, Seed: uint64(3000 + i)})
	}
	b.ReportMetric(last.BandwidthOverhead*100, "overhead_%")
}

// BenchmarkAblationDecoys sweeps the decoy count and measures blind-fetcher
// catch rates.
func BenchmarkAblationDecoys(b *testing.B) {
	var last experiments.AblationDecoysResult
	for i := 0; i < b.N; i++ {
		last = experiments.AblationDecoys(experiments.Scale{Sessions: 300, Seed: uint64(4000 + i)})
	}
	if len(last.Rows) > 0 {
		b.ReportMetric(last.Rows[len(last.Rows)-1].SinglePickCatchRate, "catch_rate_m16")
	}
}

// BenchmarkAblationSignals evaluates the combining-rule variants (CSS only,
// mouse only, union, full rule) against ground truth.
func BenchmarkAblationSignals(b *testing.B) {
	var last experiments.AblationSignalsResult
	for i := 0; i < b.N; i++ {
		last = experiments.AblationSignals(experiments.Scale{Sessions: 150, Seed: uint64(6000 + i)})
	}
	if len(last.Rows) == 4 {
		b.ReportMetric(last.Rows[3].Accuracy*100, "full_rule_acc_%")
		b.ReportMetric(last.Rows[0].Accuracy*100, "css_only_acc_%")
	}
}

// BenchmarkStagedDetection evaluates the Section 4.1 staged design
// (fast rules first, AdaBoost for boundary cases).
func BenchmarkStagedDetection(b *testing.B) {
	var last experiments.StagedResult
	for i := 0; i < b.N; i++ {
		last = experiments.Staged(experiments.Scale{Sessions: 120, Seed: uint64(7000 + i)})
	}
	if len(last.Rows) == 3 {
		b.ReportMetric(last.Rows[2].Accuracy*100, "staged_acc_%")
		b.ReportMetric(last.FastPathShare*100, "fast_path_%")
	}
}

// BenchmarkBaselineComparison compares the combining rule against the
// robots.txt / User-Agent heuristic baseline.
func BenchmarkBaselineComparison(b *testing.B) {
	var last experiments.BaselineComparisonResult
	for i := 0; i < b.N; i++ {
		last = experiments.BaselineComparison(experiments.Scale{Sessions: 150, Seed: uint64(5000 + i)})
	}
	if len(last.Rows) > 0 {
		b.ReportMetric(last.Rows[0].Accuracy*100, "rule_acc_%")
		b.ReportMetric(last.Rows[1].Accuracy*100, "heuristic_acc_%")
	}
}

// --- micro-benchmarks for the detection pipeline hot paths ------------------

// BenchmarkInstrumentPage measures rewriting one origin page (key issue,
// script generation, HTML injection). The client IP pool is built outside the
// timed loop so the measurement isolates the engine, not fmt.Sprintf.
func BenchmarkInstrumentPage(b *testing.B) {
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 1, NumPages: 50})
	det := core.New(core.Config{Seed: 1, ObfuscateJS: true})
	page := site.Lookup("/").Body
	ips := benchClientIPs(1024)
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.InstrumentPage(ips[i%len(ips)], "Firefox/1.5", "/", page)
	}
}

// BenchmarkPrepareInstrumentation measures the streaming serve path's
// per-page instrumentation cost in isolation — key issue, pooled script
// render, cache store, fragment composition — without the HTML rewrite the
// proxy streams separately.
func BenchmarkPrepareInstrumentation(b *testing.B) {
	det := core.New(core.Config{Seed: 4, ObfuscateJS: true})
	ips := benchClientIPs(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prep, _ := det.PrepareInstrumentation(ips[i%len(ips)], "Firefox/1.5", "/")
		prep.Release()
	}
}

// BenchmarkScriptRender measures pooled per-page script generation (template
// copy plus key splices) — the cost that replaced BenchmarkOverheadJSGeneration's
// per-page compile on the serving path.
func BenchmarkScriptRender(b *testing.B) {
	gen := jsgen.NewGenerator()
	pool := jsgen.NewPool(gen, jsgen.TemplateConfig{
		BeaconBase: "http://www.example.com",
		KeyDigits:  10, Decoys: 4, UAReport: true, Obfuscate: true,
	}, 8, 9)
	src := rng.New(9)
	decoys := []string{src.DigitKey(10), src.DigitKey(10), src.DigitKey(10), src.DigitKey(10)}
	dst := make([]byte, 0, pool.MaxSize())
	b.ReportAllocs()
	b.ResetTimer()
	size := 0
	for i := 0; i < b.N; i++ {
		dst = pool.Render(dst[:0], uint64(i), "0729395160", "5550001111", decoys)
		size = len(dst)
	}
	b.ReportMetric(float64(size), "script_bytes")
}

// BenchmarkKeystoreIssue measures per-page key issuance against a warm
// client (the steady state of a busy session).
func BenchmarkKeystoreIssue(b *testing.B) {
	s := keystore.New(keystore.Config{Seed: 6})
	ips := benchClientIPs(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Issue(ips[i%len(ips)], "/page1.html")
	}
}

// BenchmarkKeystoreIssueN measures batched issuance (16 pages per batch for
// one client), reporting per-page cost so the lock/scan amortisation is
// directly comparable with BenchmarkKeystoreIssue.
func BenchmarkKeystoreIssueN(b *testing.B) {
	const batch = 16
	s := keystore.New(keystore.Config{Seed: 6, MaxPerClient: 2 * batch})
	ips := benchClientIPs(1024)
	pages := make([]string, batch)
	for i := range pages {
		pages[i] = fmt.Sprintf("/p%d.html", i)
	}
	out := make([]keystore.Issued, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		out = s.IssueN(ips[(i/batch)%len(ips)], pages, out[:0])
	}
}

// BenchmarkHandleBeaconCSS measures serving a stylesheet beacon request.
func BenchmarkHandleBeaconCSS(b *testing.B) {
	det := core.New(core.Config{Seed: 2})
	_, inst := det.InstrumentPage("10.0.0.1", "Firefox/1.5", "/", []byte("<html><head></head><body></body></html>"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.HandleBeacon("10.0.0.1", "Firefox/1.5", inst.CSSPath)
	}
}

// BenchmarkHTMLRewrite measures the raw rewriter on a realistic page.
func BenchmarkHTMLRewrite(b *testing.B) {
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 3, NumPages: 50})
	page := site.Lookup("/").Body
	inj := htmlmod.Injection{
		CSSHref:      "/__bd/2031464296.css",
		ScriptSrc:    "/__bd/index_0729395150.js",
		InlineScript: "document.write('x');",
		HandlerName:  "__bd_f",
		HiddenHref:   "/__bd/hidden/1.html",
		HiddenImgSrc: "/__bd/transp_1x1.gif",
	}
	b.SetBytes(int64(len(page)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		htmlmod.Rewrite(page, inj)
	}
}

// --- contention benchmarks for the sharded engine ---------------------------
//
// Each benchmark runs the same parallel workload against a single-shard
// engine (the seed's single-global-mutex behaviour) and the default sharded
// engine. Compare the shards=1 and sharded ns/op at GOMAXPROCS >= 8 to see
// the fan-out win; the sharded variant must scale with cores where the
// single lock serialises.

// benchClientIPs returns a pool of client IPs reused by all goroutines, so
// sessions overlap across goroutines and shard locks are genuinely shared.
func benchClientIPs(n int) []string {
	ips := make([]string, n)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.%d.%d.%d", i/65536%256, i/256%256, i%256)
	}
	return ips
}

// BenchmarkObserveRequestParallel measures concurrent per-request session
// accounting through the engine.
func BenchmarkObserveRequestParallel(b *testing.B) {
	ips := benchClientIPs(1024)
	at := time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC)
	for _, shards := range []int{1, 0} { // 0 = default shard count
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = fmt.Sprintf("shards=%d", shard.DefaultShards)
		}
		b.Run(name, func(b *testing.B) {
			det := core.New(core.Config{Seed: 1, Shards: shards})
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)) * 7919 // offset goroutines into the pool
				for pb.Next() {
					det.ObserveRequest(logfmt.Entry{
						Time: at, ClientIP: ips[i%len(ips)], UserAgent: "Firefox/1.5",
						Method: "GET", Path: "/page1.html", Status: 200, Bytes: 4096,
						ContentType: "text/html",
					})
					i++
				}
			})
		})
	}
}

// BenchmarkHandleBeaconParallel measures concurrent beacon handling (CSS
// signal marking plus keystore validation of unknown keys).
func BenchmarkHandleBeaconParallel(b *testing.B) {
	ips := benchClientIPs(1024)
	for _, shards := range []int{1, 0} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = fmt.Sprintf("shards=%d", shard.DefaultShards)
		}
		b.Run(name, func(b *testing.B) {
			det := core.New(core.Config{Seed: 2, Shards: shards})
			_, inst := det.InstrumentPage("10.0.0.1", "Firefox/1.5", "/", []byte("<html><head></head><body></body></html>"))
			prefix := det.Config().BeaconPrefix
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)) * 7919
				for pb.Next() {
					ip := ips[i%len(ips)]
					if i%2 == 0 {
						det.HandleBeacon(ip, "Firefox/1.5", inst.CSSPath)
					} else {
						det.HandleBeacon(ip, "Firefox/1.5", prefix+"/0000000000.jpg")
					}
					i++
				}
			})
		})
	}
}

// BenchmarkNetworkDrive measures replaying a fixed request batch through an
// 8-node CDN, serially versus with the per-node parallel driver. On a
// multi-core host the parallel driver should approach a linear speedup: each
// node's engine is sharded, node stats are atomic, and policy reads are
// lock-free, so the workers share almost nothing.
func BenchmarkNetworkDrive(b *testing.B) {
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 31, NumPages: 40})
	ips := benchClientIPs(512)
	at := time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC)
	reqs := make([]agents.Request, 4096)
	for i := range reqs {
		path := "/page1.html"
		if i%3 == 0 {
			path = "/"
		}
		reqs[i] = agents.Request{
			Time: at.Add(time.Duration(i) * time.Millisecond), IP: ips[i%len(ips)],
			UserAgent: "Firefox/1.5", Method: "GET", Path: path,
		}
	}
	b.Run("serial", func(b *testing.B) {
		netw := cdn.NewNetwork(8, site, core.Config{Seed: 32}, true, 5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				netw.Do(req)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		netw := cdn.NewNetwork(8, site, core.Config{Seed: 32}, true, 5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			netw.DriveParallel(reqs)
		}
	})
}

// BenchmarkSessionObserve measures per-request session accounting.
func BenchmarkSessionObserve(b *testing.B) {
	tracker := session.NewTracker(session.Config{})
	entry := logfmt.Entry{
		Time: time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC), ClientIP: "10.0.0.1",
		UserAgent: "Firefox/1.5", Method: "GET", Path: "/page1.html", Status: 200,
		Referer: "http://www.example.com/", Bytes: 4096, ContentType: "text/html",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracker.Observe(entry)
	}
}

// BenchmarkFeatureExtraction measures computing the Table 2 attribute vector.
func BenchmarkFeatureExtraction(b *testing.B) {
	counts := session.Counts{
		Total: 100, Head: 2, Get: 95, Post: 3, HTML: 40, Image: 30, CGI: 10,
		Favicon: 1, Embedded: 45, WithReferrer: 70, UnseenReferrer: 10,
		LinkFollowing: 60, Status2xx: 85, Status3xx: 5, Status4xx: 8, Status5xx: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = counts.Vector()
	}
}

// BenchmarkAdaBoostTrain measures training the 200-round ensemble on a
// moderately sized labelled set.
func BenchmarkAdaBoostTrain(b *testing.B) {
	src := rng.New(11)
	examples := make([]features.Example, 0, 400)
	for i := 0; i < 400; i++ {
		human := i%2 == 0
		var v features.Vector
		if human {
			v[features.ReferrerPct] = 0.6 + 0.2*src.Float64()
			v[features.EmbeddedObjPct] = 0.5 + 0.3*src.Float64()
		} else {
			v[features.HTMLPct] = 0.7 + 0.3*src.Float64()
			v[features.Resp4xxPct] = 0.2 * src.Float64()
		}
		examples = append(examples, features.Example{X: v, Human: human})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adaboost.Train(examples, adaboost.Config{Rounds: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaBoostPredict measures single-vector prediction latency.
func BenchmarkAdaBoostPredict(b *testing.B) {
	src := rng.New(13)
	examples := make([]features.Example, 0, 200)
	for i := 0; i < 200; i++ {
		var v features.Vector
		for j := range v {
			v[j] = src.Float64()
		}
		examples = append(examples, features.Example{X: v, Human: i%2 == 0})
	}
	model, err := adaboost.Train(examples, adaboost.Config{Rounds: 200})
	if err != nil {
		b.Fatal(err)
	}
	var probe features.Vector
	probe[features.ReferrerPct] = 0.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(probe)
	}
}

// BenchmarkClassifyParallel compares the two classification paths of the
// detect layer from all cores at once: "cached" reads the per-session
// verdict cache off the tracker's published snapshot (the serving path —
// 0 allocs/op at steady state), while "recompute" re-derives the feature
// vector from the counters and re-runs the full chain on every call (what
// every consumer did before the verdict path was unified).
func BenchmarkClassifyParallel(b *testing.B) {
	setup := func(b *testing.B) (*core.Engine, []session.Key) {
		b.Helper()
		d := core.New(core.Config{Seed: 42, Shards: 32})
		var examples []features.Example
		for i := 0; i < 64; i++ {
			var v features.Vector
			if i%2 == 0 {
				v[features.ReferrerPct] = 0.7
				examples = append(examples, features.Example{X: v, Human: true})
			} else {
				v[features.HTMLPct] = 0.9
				examples = append(examples, features.Example{X: v, Human: false})
			}
		}
		model, err := adaboost.Train(examples, adaboost.Config{Rounds: 200})
		if err != nil {
			b.Fatal(err)
		}
		d.SetModel(model)
		keys := make([]session.Key, 256)
		for i := range keys {
			keys[i] = session.Key{IP: fmt.Sprintf("10.8.%d.%d", i/250, i%250), UserAgent: "Firefox/1.5"}
			for r := 0; r < 15; r++ {
				d.ObserveRequest(logfmt.Entry{
					ClientIP: keys[i].IP, UserAgent: keys[i].UserAgent, Method: "GET",
					Path: fmt.Sprintf("/p%d.html", r), Status: 200, Referer: "http://h/x.html",
				})
			}
			d.Classify(keys[i]) // warm the verdict cache
		}
		return d, keys
	}

	b.Run("cached", func(b *testing.B) {
		d, keys := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				d.Classify(keys[i%len(keys)])
				i++
			}
		})
	})

	b.Run("recompute", func(b *testing.B) {
		d, keys := setup(b)
		// Rebuild cache-less snapshots so every call pays the pre-unification
		// cost: feature re-derivation from counts plus a full chain walk.
		snaps := make([]session.Snapshot, len(keys))
		for i, k := range keys {
			snap, ok := d.Session(k)
			if !ok {
				b.Fatal("session missing")
			}
			snaps[i] = session.Snapshot{
				Key: snap.Key, FirstSeen: snap.FirstSeen, LastSeen: snap.LastSeen,
				Counts: snap.Counts, Signals: snap.Signals, Epoch: snap.Epoch,
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				s := snaps[i%len(snaps)]
				s.Features = s.Counts.Vector() // the old re-derive-per-classify cost
				d.ClassifySnapshot(s)
				i++
			}
		})
	})
}
